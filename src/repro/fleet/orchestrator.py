"""Fleet-scale session orchestration on the discrete-event simulator.

The paper's evaluation establishes one session between two stations; the
:class:`FleetOrchestrator` scales that scenario to a whole fleet: ``N``
vehicles concurrently work through ECQV enrollment at a contended central
CA, dynamic key derivation with the gateway, and managed application
traffic whose session keys expire and re-key under a
:class:`~repro.protocols.SessionPolicy` — the enforced-lifetime story the
paper motivates, at production scale.

Since the topology subsystem (:mod:`repro.fleet.topology`) the deployment
is explicit rather than implied:

* the fleet runs on ``M`` **gateway shards**, each its own
  :class:`~repro.sim.engine.Resource` on its own central device, each
  issuing through a CA chained to one fleet root; vehicles are placed by
  a pluggable shard-assignment policy;
* a configurable fraction of vehicles additionally establishes **V2V
  pairwise sessions** — STS directly between two enrolled vehicles, no
  gateway in the data path, cross-shard pairs validating each other's
  certificate chain through the shared :class:`~repro.ecqv.TrustStore`;
* a shard can **fail mid-run**: its queued requests are re-queued and its
  vehicles re-key at surviving shards (their chained credentials stay
  valid), with the disruption visible in the latency statistics;
* vehicles **live-migrate** between healthy shards — either through the
  explicit :meth:`FleetOrchestrator.migrate` API or the
  ``migrate_threshold`` re-balancing policy — draining their gateway
  sessions and re-enrolling through the target sub-CA;
* a failed shard can **rejoin** at a scheduled time with a fresh sub-CA
  chained to the same root at the next *chain epoch*; the trust store
  retires the dead epoch, stale credentials re-enroll before their next
  establishment, and the re-balancer migrates vehicles back.

``shards=1, v2v_fraction=0`` is the degenerate case and reproduces the
original single-gateway fleet *bit-for-bit* — same DRBG streams, same
event schedule, same :class:`~repro.fleet.stats.FleetStats` digest.

Every computation runs the real cryptography once, is priced on the
hardware cost model, and is laid onto the
:class:`~repro.sim.engine.Simulator` timeline:

* each vehicle computes on its own (slow, constrained) device model;
* a shard's CA/gateway computation contends that shard's
  :class:`~repro.sim.engine.Resource` on the (fast) central device —
  issuance requests queue up and are served in **batches** through
  :meth:`~repro.ecqv.ca.CertificateAuthority.issue_batch`, so a deeper
  queue amortizes into one shared Jacobian normalization (a host
  wall-clock saving; the priced cost model folds normalization into
  the per-multiplication events);
* ephemeral pools (:class:`~repro.protocols.pool.EphemeralPool`) built
  with :func:`~repro.ec.mul_base_batch` amortize Op1 across sessions;
* V2V traffic prices both endpoints on the vehicle device model and
  touches no central resource at all.

Determinism: all randomness flows from seeded DRBGs and one seeded
``random.Random`` for arrival jitter, so two runs with equal
:class:`FleetConfig` produce bit-identical :class:`~repro.fleet.stats.FleetStats`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .. import trace
from ..backend import available_backends, use_backend
from ..ec import Curve, SECP256R1, mul_base
from ..ecdsa import sign, verify_batch
from ..ecqv import CertificateRequest, CertificateRequester
from ..errors import (
    AuthenticationError,
    CertificateError,
    ConfigError,
    ScenarioError,
    SimulationError,
)
from ..hardware import DeviceModel, get_device
from ..primitives import HmacDrbg, sha256
from ..protocols import (
    SessionContext,
    SessionExpired,
    SessionManager,
    SessionPolicy,
    install_pairwise_key,
    run_protocol,
)
from ..protocols.pool import EphemeralPool
from ..protocols.registry import get_protocol
from ..sim.engine import Simulator
from ..testbed import DEFAULT_NOW, device_id
from .policy import (
    FleetState,
    PolicyEngine,
    ShardView,
    VehicleView,
    resolve_policies,
)
from .scenario import (
    CaQueueFlood,
    ReplayStorm,
    Scenario,
    StaleCertFlood,
    UniformArrivals,
    compile_scenario,
)
from .stats import (
    ExactSum,
    FleetStats,
    InjectionStats,
    StreamingLatency,
    merge_shard_stats,
)
from .topology import (
    FleetTopology,
    GATEWAY_NAME,
    GatewayShard,
    SHARD_POLICIES,
    plan_v2v_pairs,
)
from .vehicle import Vehicle

__all__ = [
    "FleetConfig",
    "FleetOrchestrator",
    "FleetResult",
    "GATEWAY_NAME",
    "run_fleet",
]


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of one fleet orchestration run.

    Attributes:
        n_vehicles: fleet size (one initiator per vehicle).
        seed: master seed; every DRBG stream and the arrival jitter
            derive from it, making runs bit-reproducible.
        curve: domain parameters for all credentials and sessions.
        protocol: registry name of the KD protocol vehicles run against
            the gateway (dynamic protocols re-key with fresh ephemerals).
        max_age_ms: session-key wall-clock budget (policy, sim ms).
        max_records: session-key record budget (policy).
        records_per_vehicle: application records each vehicle must
            deliver before it is done.
        send_interval_ms: spacing between a vehicle's records.
        arrival_spread_ms: enrollment arrivals are jittered uniformly
            over ``[0, arrival_spread_ms)``.
        vehicle_device: device-model name vehicles compute on.
        ca_device: device-model name each CA/gateway shard computes on.
        bus_ms_per_byte: transfer cost per wire byte, charged on both
            handshake transcripts and application records (stands in
            for the CAN-FD stack at fleet granularity).
        record_bytes: application payload size per record.
        pool_size: ephemeral pool entries per vehicle (0 disables).
        ca_batch_limit: max requests a CA folds into one issuance batch.
        use_batch_ec: route CA issuance and Op1 through the batched EC
            APIs.  ``False`` disables ephemeral pools (so every Op1
            pays its ``ec.mul_base`` on the timeline) and issues
            certificates scalar-at-a-time.  Note the *priced* cost of
            issuance itself is identical either way — the cost model
            folds normalization into the ``ec.mul_base`` event — so
            this flag changes simulated time only through pooling;
            the batched-normalization win is a host wall-clock effect
            measured by ``bench_fleet_scale.py``.
        cert_validity_seconds: certificate-session length for issued
            credentials.
        shards: number of gateway shards.  ``1`` reproduces the
            single-gateway fleet bit-for-bit; ``>1`` chains every shard
            CA to a fleet root and shares a trust store fleet-wide.
        shard_policy: shard-assignment policy, one of
            :data:`~repro.fleet.topology.SHARD_POLICIES`.
        v2v_fraction: fraction of the fleet paired into direct
            vehicle↔vehicle sessions (0 disables; pairs are planned
            deterministically from the seed).
        v2v_records: records the initiator of each V2V pair delivers to
            its partner.
        shard_fail_at_ms: simulated time at which shard ``fail_shard``
            goes down (``None`` disables; requires ``shards >= 2``).
        fail_shard: index of the shard the failure scenario kills.
        shard_rejoin_at_ms: simulated time at which the failed shard
            comes back (``None`` disables; requires ``shard_fail_at_ms``
            and must be later than it).  The rejoined shard is
            re-provisioned with a fresh sub-CA chained to the same fleet
            root at the next **chain epoch**; the trust store retires the
            dead epoch, so credentials it issued must re-enroll before
            their next establishment.
        migrate_threshold: live re-balancing policy (``None`` disables;
            requires ``shards >= 2``).  Checked at every application
            send: when the sending vehicle's shard holds more than
            ``migrate_threshold`` active vehicles above the least-loaded
            alive shard, the vehicle live-migrates there — its gateway
            sessions are dropped on both halves (the dead half can only
            see ``SessionExpired``), it re-enrolls through the target
            sub-CA and re-establishes before resuming traffic.
        authenticate_requests: vehicles sign their enrollment requests
            (proof of possession) and CAs batch-verify whole queues of
            them via :func:`~repro.ecdsa.verify_batch` before issuing.
        backend: crypto backend the run executes under (``None`` keeps
            the ambient :func:`repro.backend.get_backend` selection).
            Backends are bit-parity by contract — same DRBG streams,
            same trace events, same :class:`~repro.fleet.FleetStats`
            digest — so this knob only changes host wall-clock;
            ``"accelerated"`` routes SHA-2/HMAC/AES **and every EC
            scalar multiplication** through ``hashlib``/OpenSSL for
            fleet-scale sweeps (EC being ~90 % of accelerated
            wall-clock before the EC seam landed).
        observe: attach a default :class:`repro.obs.Observer` to the
            run when no explicit ``obs`` is passed to the orchestrator;
            the observer comes back on :attr:`FleetResult.obs`.
            Observability is digest-neutral — hooks only read state —
            so this knob never changes simulated results either.
        workers: worker *processes* the run executes on.  ``1`` (the
            default) is today's in-process event loop, bit-identical to
            every historical run.  ``workers > 1`` partitions the
            gateway shards round-robin across worker processes when the
            configuration is provably shard-independent (static-hash
            placement, ``shards >= 2``, no V2V, no failover/rejoin, no
            re-balancing, no roaming profiles, no stale-cert floods —
            see :func:`repro.fleet.parallel.partition_plan`); each
            worker simulates only its shards' event streams and the
            barrier merge reproduces the single-worker
            :class:`~repro.fleet.stats.FleetStats` digest **bit-for-bit**
            via the proven merge laws.  Configurations whose shards are
            dynamically coupled fall back to the serial loop (same
            digest trivially).  Workers are capped at the shard count.
        stream: constant-memory streaming mode.  Releases per-vehicle
            timeline events and ephemeral pools (and, for vehicles
            without a V2V pairing, the session manager) as each vehicle
            finishes, and stops :class:`~repro.sim.engine.Resource`
            interval recording — the O(events) allocations that bound
            fleet size.  Digest-neutral by construction: only state the
            finished vehicle can never touch again is dropped.  Off by
            default because :attr:`FleetResult.vehicles` timelines and
            resource interval traces are part of the debugging API.
        policy: named policy bundle from
            :data:`repro.fleet.policy.POLICY_BUNDLES` supplying the
            rules the :class:`~repro.fleet.policy.PolicyEngine`
            evaluates at the run's decision points (shard assignment,
            migration, re-key cadence, failover adoption).  ``None``
            selects the ``default`` bundle — the extracted legacy
            strategies, bit-identical to every historical digest.  A
            bundle that overrides an explicitly-set knob (e.g.
            ``utilisation-rebalance`` with ``migrate_threshold``) is
            rejected here as a :class:`~repro.errors.ConfigError`.

    Examples:
        Configs are validated eagerly with actionable errors::

            >>> FleetConfig(n_vehicles=0)
            Traceback (most recent call last):
                ...
            repro.errors.ConfigError: fleet needs at least one vehicle, got 0
            >>> FleetConfig(backend="turbo")
            Traceback (most recent call last):
                ...
            repro.errors.ConfigError: unknown crypto backend 'turbo'; have ['accelerated', 'reference']

        The backend knob never changes simulated results, only host
        wall-clock::

            >>> config = FleetConfig(n_vehicles=2, seed=b"doc", backend="accelerated")
            >>> config.backend
            'accelerated'
    """

    n_vehicles: int = 16
    seed: bytes = b"fleet-storm"
    curve: Curve = SECP256R1
    protocol: str = "sts"
    max_age_ms: float = 600_000.0
    max_records: int = 25
    records_per_vehicle: int = 50
    send_interval_ms: float = 25.0
    arrival_spread_ms: float = 1_000.0
    vehicle_device: str = "stm32f767"
    ca_device: str = "rpi4"
    bus_ms_per_byte: float = 0.002
    record_bytes: int = 32
    pool_size: int = 4
    ca_batch_limit: int = 64
    use_batch_ec: bool = True
    cert_validity_seconds: int = 24 * 3600
    shards: int = 1
    shard_policy: str = "static-hash"
    v2v_fraction: float = 0.0
    v2v_records: int = 10
    shard_fail_at_ms: float | None = None
    fail_shard: int = 0
    shard_rejoin_at_ms: float | None = None
    migrate_threshold: int | None = None
    authenticate_requests: bool = False
    backend: str | None = None
    observe: bool = False
    workers: int = 1
    stream: bool = False
    policy: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ConfigError(
                f"workers must be a positive integer, got {self.workers!r}"
            )
        if self.n_vehicles <= 0:
            raise ConfigError(
                f"fleet needs at least one vehicle, got {self.n_vehicles}"
            )
        if self.records_per_vehicle <= 0 or self.max_records <= 0:
            raise ConfigError(
                "record budgets must be positive, got"
                f" records_per_vehicle={self.records_per_vehicle},"
                f" max_records={self.max_records}"
            )
        if self.send_interval_ms <= 0 or self.max_age_ms <= 0:
            raise ConfigError(
                "intervals must be positive, got"
                f" send_interval_ms={self.send_interval_ms},"
                f" max_age_ms={self.max_age_ms}"
            )
        if self.arrival_spread_ms < 0:
            raise ConfigError(
                f"arrival_spread_ms must be >= 0, got {self.arrival_spread_ms}"
            )
        if self.record_bytes <= 0:
            raise ConfigError(
                f"record_bytes must be positive, got {self.record_bytes}"
            )
        if self.bus_ms_per_byte < 0:
            raise ConfigError(
                f"bus_ms_per_byte must be >= 0, got {self.bus_ms_per_byte}"
            )
        if self.pool_size < 0:
            raise ConfigError(
                f"pool_size must be >= 0 (0 disables pooling),"
                f" got {self.pool_size}"
            )
        if self.ca_batch_limit <= 0:
            raise ConfigError(
                f"ca_batch_limit must be positive, got {self.ca_batch_limit}"
            )
        if self.cert_validity_seconds <= 0:
            raise ConfigError(
                "cert_validity_seconds must be positive,"
                f" got {self.cert_validity_seconds}"
            )
        if self.shards <= 0:
            raise ConfigError(
                f"fleet needs at least one gateway shard, got {self.shards}"
            )
        if self.shard_policy not in SHARD_POLICIES:
            raise ConfigError(
                f"unknown shard policy {self.shard_policy!r};"
                f" have {SHARD_POLICIES}"
            )
        if not 0.0 <= self.v2v_fraction <= 1.0:
            raise ConfigError(
                f"v2v_fraction must be within [0, 1], got {self.v2v_fraction}"
            )
        if self.v2v_records <= 0:
            raise ConfigError(
                f"v2v_records must be positive, got {self.v2v_records}"
            )
        if self.shard_fail_at_ms is not None:
            if self.shards < 2:
                raise ConfigError(
                    "failover scenarios need at least two shards"
                )
            if self.shard_fail_at_ms <= 0:
                raise ConfigError(
                    f"shard_fail_at_ms must be positive,"
                    f" got {self.shard_fail_at_ms}"
                )
        if not 0 <= self.fail_shard < self.shards:
            raise ConfigError(
                f"fail_shard {self.fail_shard} out of range for"
                f" {self.shards} shard(s)"
            )
        if self.shard_rejoin_at_ms is not None:
            if self.shard_fail_at_ms is None:
                raise ConfigError(
                    "a rejoin schedule needs a failure schedule: set"
                    " shard_fail_at_ms as well"
                )
            if self.shard_rejoin_at_ms <= self.shard_fail_at_ms:
                raise ConfigError(
                    f"shard_rejoin_at_ms ({self.shard_rejoin_at_ms}) must be"
                    f" after shard_fail_at_ms ({self.shard_fail_at_ms})"
                )
        if self.migrate_threshold is not None:
            if self.shards < 2:
                raise ConfigError(
                    "live migration needs at least two shards"
                )
            if self.migrate_threshold < 1:
                raise ConfigError(
                    f"migrate_threshold must be positive,"
                    f" got {self.migrate_threshold}"
                )
        if self.backend is not None and self.backend not in available_backends():
            raise ConfigError(
                f"unknown crypto backend {self.backend!r};"
                f" have {sorted(available_backends())}"
            )
        if self.policy is not None:
            # Late import: repro.fleet.policy imports topology, which this
            # module also imports — the registry is only needed here.
            from .policy import POLICY_BUNDLES, bundle_conflict

            if self.policy not in POLICY_BUNDLES:
                raise ConfigError(
                    f"unknown policy bundle {self.policy!r};"
                    f" have {sorted(POLICY_BUNDLES)}"
                )
            conflict = bundle_conflict(self.policy, self)
            if conflict is not None:
                raise ConfigError(conflict)
        get_protocol(self.protocol)  # fail fast on unknown names


@dataclass
class _QueueEntry:
    """One request waiting in a shard CA's issuance queue.

    ``then`` is ``None`` for first enrollments (the standard
    enrolled→establish continuation) and a callback for churn
    re-enrollments (migration, chain-epoch roll).  ``adversarial`` is
    ``None`` for legitimate requests and the *injection index* for
    forged requests enqueued by a CA-flood injection (``vehicle`` and
    ``requester`` are then ``None`` — no fleet member stands behind the
    request).
    """

    vehicle: "Vehicle | None"
    requester: "CertificateRequester | None"
    request: CertificateRequest
    queued_at: float
    then: object = None
    adversarial: int | None = None


@dataclass
class FleetResult:
    """Everything a fleet run produces.

    ``obs`` carries the :class:`repro.obs.Observer` that watched the
    run when one was attached (explicitly or via
    :attr:`FleetConfig.observe`), ``None`` otherwise.
    """

    stats: FleetStats
    vehicles: list[Vehicle] = field(default_factory=list)
    obs: "object | None" = None


class FleetOrchestrator:
    """Drives a whole fleet through enrollment, sessions and re-keys.

    An optional :class:`~repro.fleet.scenario.Scenario` makes the
    workload declarative: the compiled schedule supplies per-vehicle
    arrival times, behavior-profile overrides (record budgets, send
    intervals, re-key budgets, roaming, convoy shard pins) and
    adversarial injections executed against the live fleet.  Without a
    scenario — or with the legacy uniform scenario — every code path and
    DRBG stream is bit-identical to the pre-scenario orchestrator.
    """

    def __init__(
        self,
        config: FleetConfig,
        scenario: "Scenario | None" = None,
        obs=None,
    ) -> None:
        if obs is None and config.observe:
            from ..obs import Observer

            obs = Observer()
        self.obs = obs
        if obs is not None:
            from ..obs.fleet import FleetInstrumentation

            self._hooks = FleetInstrumentation(obs)
        else:
            self._hooks = None
        self.config = config
        self.scenario = scenario
        self.schedule = (
            compile_scenario(scenario, config) if scenario is not None else None
        )
        if config.workers > 1:
            from .parallel import partition_plan

            self._plan = partition_plan(config, self.schedule)
        else:
            self._plan = None
        if self._plan is not None:
            # Parallel run: provisioning happens inside each worker
            # process (every worker builds the full deterministic
            # topology); building it here too would double the setup
            # cost for nothing.  run() dispatches to the worker pool.
            return
        with use_backend(config.backend):
            self._build(config, scenario)

    def _build(
        self, config: FleetConfig, scenario: "Scenario | None"
    ) -> None:
        """Provision topology, shards and vehicles (backend-scoped)."""
        self.sim = Simulator()
        self.vehicle_device: DeviceModel = get_device(config.vehicle_device)
        self.ca_device: DeviceModel = get_device(config.ca_device)
        self.topology = FleetTopology(config)
        self.shards: list[GatewayShard] = self.topology.shards
        seed = config.seed
        policy = SessionPolicy(
            max_age_seconds=config.max_age_ms / 1000.0,
            max_records=config.max_records,
        )
        clock = lambda: self.sim.now / 1000.0  # noqa: E731
        self._policy = policy
        self._clock = clock
        for shard in self.shards:
            shard.manager = SessionManager(
                self._gateway_context_factory(shard),
                "B",
                protocol=config.protocol,
                policy=policy,
                clock=clock,
            )
        # Legacy single-gateway aliases (shard 0); the degenerate fleet is
        # exactly the PR 1 deployment, so these keep the original API.
        self.ca = self.shards[0].ca
        self.ca_resource = self.shards[0].resource
        self.gateway_credential = self.shards[0].gateway_credential
        self.gateway_id = self.shards[0].gateway_id
        self.gateway_manager = self.shards[0].manager
        self._gateway_pool = self.shards[0].pool
        if self.schedule is None:
            # One authoritative implementation of the legacy jitter
            # stream: UniformArrivals replays it bit-identically (pinned
            # by test_uniform_matches_legacy_jitter).
            arrivals = list(UniformArrivals().compile(config))
        else:
            arrivals = list(self.schedule.arrival_ms)
        self.vehicles: list[Vehicle] = []
        for index in range(config.n_vehicles):
            name = f"veh{index:04d}"
            vehicle = Vehicle(
                name=name,
                index=index,
                device_id=device_id(name),
                arrival_ms=arrivals[index],
            )
            vehicle_policy = policy
            if self.schedule is not None:
                vehicle.profile = self.schedule.profile_of[index]
                vehicle.pinned_shard = self.schedule.pinned_shard[index]
                profile = self.schedule.profile_for(index)
                if profile is not None and profile.max_records is not None:
                    # A commuter re-key cadence: the vehicle-side manager
                    # enforces the tighter record budget (the gateway side
                    # keeps the fleet policy; whichever expires first
                    # forces the re-key).
                    vehicle_policy = SessionPolicy(
                        max_age_seconds=config.max_age_ms / 1000.0,
                        max_records=profile.max_records,
                    )
            vehicle.manager = SessionManager(
                self._vehicle_context_factory(vehicle),
                "A",
                protocol=config.protocol,
                policy=vehicle_policy,
                clock=clock,
            )
            self.vehicles.append(vehicle)
        self.v2v_pairs: list[tuple[int, int]] = plan_v2v_pairs(config)
        for a, b in self.v2v_pairs:
            self.vehicles[a].v2v_peer_index = b
            self.vehicles[b].v2v_peer_index = a
        self._v2v_ready: set[int] = set()
        self._v2v_started: set[tuple[int, int]] = set()
        # Streaming accumulators: constant state per distinct sample
        # value instead of one Python float object per sample, and
        # .summary() reproduces LatencySummary.from_samples bit-for-bit
        # (the digest contract), so these are always-on.
        self._enrollment_latencies = StreamingLatency()
        self._establishment_latencies = StreamingLatency()
        self._queue_latencies = StreamingLatency()
        self._v2v_latencies = StreamingLatency()
        self._sessions_established = 0
        self._rekeys = 0
        self._records_sent = 0
        # Exact (order-independent) streaming sum: the one digest float
        # accumulated across shard boundaries in interleaved event
        # order, so per-worker partials must fold into the same bits.
        self._vehicle_energy = ExactSum()
        self._handovers = 0
        self._v2v_sessions = 0
        self._v2v_rekeys = 0
        self._v2v_cross_shard = 0
        self._v2v_records_sent = 0
        self._migrations = 0
        self._rejoins = 0
        self._re_enrollments = 0
        self._migration_latencies = StreamingLatency()
        #: Continuations coalesced onto a vehicle's in-flight
        #: re-enrollment (keyed by vehicle index).
        self._re_enroll_followups: dict[int, list] = {}
        # -- scenario injection state -----------------------------------------
        injections = (
            self.schedule.injections if self.schedule is not None else ()
        )
        #: Per-injection accounting, index-aligned with the schedule.
        self._injection_log: list[dict] = [
            {"kind": spec.kind, "at_ms": spec.at_ms, "attempts": 0,
             "rejected": 0, "succeeded": 0}
            for spec in injections
        ]
        #: Replay storms need a wire capture: latest vehicle→gateway
        #: record per vehicle index (populated only when needed).
        self._capture_wire = any(
            isinstance(spec, ReplayStorm) for spec in injections
        )
        self._captured_records: dict[int, bytes] = {}
        #: Stale-cert floods need the failing shard's epoch-1 leaf
        #: certificates, snapshotted at failure time.
        self._capture_stale = any(
            isinstance(spec, StaleCertFlood) for spec in injections
        )
        self._stale_certs: list = []
        # -- policy engine -----------------------------------------------------
        #: Sim-time of the latest replay-storm dispatch: the activity
        #: signal the storm-hardened re-key strategy windows on.  Plain
        #: metadata — recording it never touches the event heap, so it
        #: is digest-neutral for every other bundle.
        self._last_storm_ms: float | None = None
        self.policy = PolicyEngine(
            resolve_policies(config, self.schedule), hooks=self._hooks
        )
        # The assignment point lives inside FleetTopology.assign (after
        # the pinned-shard check), so every caller — enrollment, failover
        # requeue, handover — routes through the same policy decision.
        self.topology.policy_hook = self._assign_decision

    # -- deterministic context factories --------------------------------------

    def _session_context(
        self, credential, personalization: bytes, pool: EphemeralPool | None
    ) -> SessionContext:
        return SessionContext(
            credential=credential,
            ca_public=self.topology.anchor_public,
            rng=HmacDrbg(self.config.seed, personalization=personalization),
            now=DEFAULT_NOW,
            ephemeral_pool=pool,
            trust_store=self.topology.trust_store,
        )

    def _gateway_context_factory(self, shard: GatewayShard):
        single = self.config.shards == 1

        def factory() -> SessionContext:
            shard.session_counter += 1
            if single:
                personalization = (
                    b"fleet|gateway|sess|%d" % shard.session_counter
                )
            else:
                personalization = b"fleet|gw%d|sess|%d" % (
                    shard.index,
                    shard.session_counter,
                )
            return self._session_context(
                shard.gateway_credential, personalization, shard.pool
            )

        return factory

    def _vehicle_context_factory(self, vehicle: Vehicle):
        def factory() -> SessionContext:
            vehicle.session_counter += 1
            return self._session_context(
                vehicle.credential,
                b"fleet|%s|sess|%d"
                % (vehicle.name.encode(), vehicle.session_counter),
                vehicle.pool,
            )

        return factory

    # -- enrollment ------------------------------------------------------------

    def _arrive(self, vehicle: Vehicle) -> None:
        vehicle.log(self.sim.now, "arrive")
        if self._hooks is not None:
            self._hooks.vehicle_arrived(self, vehicle)
        requester = CertificateRequester(
            self.config.curve,
            vehicle.device_id,
            HmacDrbg(
                self.config.seed,
                personalization=b"fleet|%s|enroll" % vehicle.name.encode(),
            ),
        )
        with trace.trace(f"{vehicle.name}:request") as cost:
            request = requester.create_request(
                authenticate=self.config.authenticate_requests
            )
        duration = self.vehicle_device.time_ms(cost)
        self._vehicle_energy.add(self.vehicle_device.energy_mj(cost))

        def submit() -> None:
            shard = self.topology.assign(vehicle)
            vehicle.shard = shard.index
            shard.vehicles_assigned += 1
            shard.active_vehicles += 1
            detail = (
                "queued at CA"
                if self.config.shards == 1
                else f"queued at shard {shard.index}"
            )
            vehicle.log(self.sim.now, "request", detail)
            shard.queue.append(
                _QueueEntry(vehicle, requester, request, self.sim.now)
            )
            self._pump_ca(shard)

        self.sim.schedule_after(duration, submit)

    def _pump_ca(self, shard: GatewayShard) -> None:
        """Serve one shard's CA queue: one batched issuance at a time.

        A batch may interleave legitimate enrollments with forged
        CA-flood requests; the CA screens the forged ones with a real
        batched proof-of-possession verification inside the same priced
        service window (the DoS cost legitimate requests queue behind),
        rejects them, and issues certificates only for the survivors.
        """
        if shard.failed or shard.issuing or not shard.queue:
            return
        batch_size = min(len(shard.queue), self.config.ca_batch_limit)
        batch = [shard.queue.popleft() for _ in range(batch_size)]
        legit = [entry for entry in batch if entry.adversarial is None]
        attacks = [entry for entry in batch if entry.adversarial is not None]
        with trace.trace("ca:issue") as cost:
            if attacks:
                # Screen the flood: one batched ECDSA pass over every
                # forged proof of possession.  A verifying forgery would
                # be a successful attack (asserted zero downstream).
                outcomes = verify_batch(
                    [
                        (
                            entry.request.request_point,
                            entry.request.signed_payload(),
                            entry.request.signature,
                        )
                        for entry in attacks
                    ]
                )
                for entry, ok in zip(attacks, outcomes):
                    log = self._injection_log[entry.adversarial]
                    if ok:
                        log["succeeded"] += 1
                    else:
                        log["rejected"] += 1
            requests = [entry.request for entry in legit]
            if not requests:
                issued = []
            elif self.config.use_batch_ec:
                issued = shard.ca.issue_batch(
                    requests,
                    validity_seconds=self.config.cert_validity_seconds,
                )
            else:
                issued = [
                    shard.ca.issue(
                        request,
                        validity_seconds=self.config.cert_validity_seconds,
                    )
                    for request in requests
                ]
        # Bind the issuing key now: a rejoin may roll shard.ca to a new
        # epoch before this batch's delivery event fires.
        issuer_public = shard.ca.public_key
        duration = shard.device.time_ms(cost)
        shard.energy_mj += shard.device.energy_mj(cost)
        start, end = shard.resource.reserve(self.sim.now, duration)
        for entry in legit:
            wait = start - entry.queued_at
            shard.queue_latency.add(wait)
            self._queue_latencies.add(wait)
            if self._hooks is not None:
                self._hooks.queue_wait(self, shard, wait)
        if self._hooks is not None:
            self._hooks.ca_batch(
                self, shard, batch_size, len(attacks), start, end
            )
        shard.issuing = True
        shard.batches += 1
        shard.max_batch = max(shard.max_batch, batch_size)

        def deliver() -> None:
            shard.issuing = False
            for entry, certificate in zip(legit, issued):
                self._receive_certificate(
                    entry.vehicle,
                    entry.requester,
                    certificate,
                    issuer_public,
                    entry.then,
                )
            self._pump_ca(shard)

        self.sim.schedule_at(end, deliver)

    def _receive_certificate(
        self, vehicle, requester, issued, issuer_public, then=None
    ) -> None:
        shard = self.shards[vehicle.shard]
        vehicle.log(self.sim.now, "certified", f"serial {issued.certificate.serial}")
        with trace.trace(f"{vehicle.name}:reception") as cost:
            vehicle.credential = requester.process_response(
                issued, issuer_public
            )
            if (
                self.config.use_batch_ec
                and self.config.pool_size > 0
                and vehicle.pool is None
            ):
                # Re-enrollments keep the existing pool: its DRBG stream
                # must never be replayed from the start.
                vehicle.pool = EphemeralPool(
                    self.config.curve,
                    HmacDrbg(
                        self.config.seed,
                        personalization=b"fleet|%s|pool"
                        % vehicle.name.encode(),
                    ),
                    self.config.pool_size,
                )
        duration = self.vehicle_device.time_ms(cost)
        self._vehicle_energy.add(self.vehicle_device.energy_mj(cost))

        def enrolled() -> None:
            shard.enrollments += 1
            if then is not None:
                vehicle.log(self.sim.now, "re-enrolled")
                then()
                return
            vehicle.enrolled_at = self.sim.now
            self._enrollment_latencies.add(
                self.sim.now - vehicle.arrival_ms
            )
            if self._hooks is not None:
                self._hooks.vehicle_enrolled(
                    self, vehicle, self.sim.now - vehicle.arrival_ms
                )
            vehicle.log(self.sim.now, "enrolled")
            self._establish(vehicle)

        self.sim.schedule_after(duration, enrolled)

    # -- failover ---------------------------------------------------------------

    def _fail_shard(self) -> None:
        """Deterministic failure scenario: one shard goes dark.

        Queued (not yet served) requests move to surviving shards with
        their original queue timestamps, so the extra wait shows up in
        the CA-queue latency distribution; vehicles holding sessions to
        the dead gateway discover the failure at their next send and
        re-key at an adopting shard (their chained credentials stay
        valid — a device died, no key was revoked).
        """
        shard = self.shards[self.config.fail_shard]
        if shard.failed:
            return
        if len(self.topology.alive_shards()) < 2:
            raise SimulationError("failover requires a surviving shard")
        shard.failed = True
        if self._capture_stale:
            # Snapshot the epoch-1 leaf certificates this CA issued: the
            # stale-cert flood presents exactly these after the rejoin
            # rolls the chain epoch.
            stale_akid = shard.ca.authority_key_id
            self._stale_certs = [
                v.credential.certificate
                for v in self.vehicles
                if v.credential is not None
                and v.credential.certificate.authority_key_id == stale_akid
            ]
        pending = list(shard.queue)
        shard.queue.clear()
        touched: list[GatewayShard] = []
        for entry in pending:
            if entry.adversarial is not None:
                # The flood died with its target: requests queued at a
                # gateway that failed before serving them are dropped.
                log = self._injection_log[entry.adversarial]
                log["rejected"] += 1
                continue
            vehicle = entry.vehicle
            shard.active_vehicles -= 1
            adopter = self._adopt_target(vehicle)
            adopter.adopt(vehicle)
            self._handovers += 1
            vehicle.log(
                self.sim.now,
                "requeue",
                f"shard {shard.index} -> shard {adopter.index}",
            )
            if self._hooks is not None:
                self._hooks.handover(self, vehicle, shard, adopter)
            adopter.queue.append(entry)
            touched.append(adopter)
        if self._hooks is not None:
            self._hooks.shard_failed(self, shard, len(touched))
        for adopter in touched:
            self._pump_ca(adopter)

    def _handover(self, vehicle: Vehicle) -> GatewayShard:
        """Move a vehicle from its failed shard to a surviving one."""
        old = self.shards[vehicle.shard]
        adopter = self._adopt_target(vehicle)
        vehicle.manager.drop(old.gateway_id)
        old.manager.drop(vehicle.device_id)
        old.active_vehicles -= 1
        adopter.adopt(vehicle)
        vehicle.handovers += 1
        self._handovers += 1
        vehicle.log(
            self.sim.now,
            "handover",
            f"shard {old.index} -> shard {adopter.index}",
        )
        if self._hooks is not None:
            self._hooks.handover(self, vehicle, old, adopter)
        return adopter

    # -- policy decision points --------------------------------------------------

    def _shard_views(self) -> tuple:
        """Frozen per-shard snapshots for one policy decision."""
        total_active = sum(
            shard.active_vehicles for shard in self.shards if not shard.failed
        )
        return tuple(
            ShardView(
                index=shard.index,
                failed=shard.failed,
                active_vehicles=shard.active_vehicles,
                queue_depth=len(shard.queue),
                epoch=shard.epoch,
                utilisation=(
                    shard.active_vehicles / total_active
                    if not shard.failed and total_active > 0
                    else 0.0
                ),
            )
            for shard in self.shards
        )

    def _vehicle_view(self, vehicle: Vehicle) -> VehicleView:
        profile = self._profile_of(vehicle)
        return VehicleView(
            index=vehicle.index,
            name=vehicle.name,
            device_id=vehicle.device_id,
            shard=vehicle.shard,
            records_sent=vehicle.records_sent,
            rekeys=vehicle.rekeys,
            migrations=vehicle.migrations,
            migrating=vehicle.migrating,
            re_enrolling=vehicle.re_enrolling,
            pinned_shard=vehicle.pinned_shard,
            roam_every=(
                profile.roam_every if profile is not None else None
            ),
            last_roam_records=vehicle.last_roam_records,
        )

    def _policy_state(
        self,
        point: str,
        vehicle: Vehicle,
        rekey_due: bool = False,
        session_records: int = 0,
    ) -> FleetState:
        return FleetState(
            point=point,
            now_ms=self.sim.now,
            vehicle=self._vehicle_view(vehicle),
            shards=self._shard_views(),
            rekey_due=rekey_due,
            session_records=session_records,
            last_storm_ms=self._last_storm_ms,
        )

    def _assign_decision(self, vehicle: Vehicle) -> "GatewayShard | None":
        """Topology hook: the shard-assignment decision point.

        Consulted by :meth:`FleetTopology.assign` after its pinned-shard
        check; ``None`` (no assign rules, or every rule passed) falls
        back to the topology's own legacy arithmetic.
        """
        if not self.policy.has_rules("assign"):
            return None
        decision = self.policy.decide(
            "assign", self._policy_state("assign", vehicle)
        )
        if decision is None:
            return None
        return self.shards[decision.target_shard]

    def _adopt_target(self, vehicle: Vehicle) -> GatewayShard:
        """Failover adoption: the failover decision point.

        A failover rule picks the adopting shard; with none installed
        (the ``default`` bundle) adoption falls through to
        :meth:`FleetTopology.assign` — the legacy behavior, which itself
        routes placement through the assignment point.
        """
        if self.policy.has_rules("failover"):
            decision = self.policy.decide(
                "failover", self._policy_state("failover", vehicle)
            )
            if decision is not None:
                return self.shards[decision.target_shard]
        return self.topology.assign(vehicle)

    # -- churn: rejoin, migration, re-enrollment --------------------------------

    def _rejoin_shard(self) -> None:
        """Scheduled recovery: the failed shard comes back, next epoch.

        Provisioning (fresh chained sub-CA, gateway credential, pool) is
        delegated to :meth:`~repro.fleet.topology.FleetTopology.rejoin_shard`;
        here the shard gets a *fresh* session manager, so any vehicle still
        holding a pre-failure session re-keys at its next send (the new
        gateway knows no old keys — the stale half can only ever miss,
        never MAC-fail), re-enrolling first because the trust store
        retired its certificate's chain epoch.  Vehicles migrate back
        under the re-balancing policy as they send.
        """
        shard = self.shards[self.config.fail_shard]
        if not shard.failed:
            return
        self.topology.rejoin_shard(shard.index)
        shard.manager = SessionManager(
            self._gateway_context_factory(shard),
            "B",
            protocol=self.config.protocol,
            policy=self._policy,
            clock=self._clock,
        )
        self._rejoins += 1
        if self._hooks is not None:
            self._hooks.rejoin(self, shard)

    def migrate(
        self,
        vehicle: Vehicle,
        shard: "GatewayShard | int",
        rule: str | None = None,
    ) -> None:
        """Live-migrate a vehicle to another healthy shard.

        Both halves of the vehicle↔gateway session are dropped through
        the managers (the drained half can only raise ``SessionExpired``
        afterwards), the vehicle re-enrolls through the target shard's
        sub-CA — a fresh certificate under the target's chain epoch — and
        re-establishes there before resuming its record stream.  This is
        the explicit API; migration policy rules call it at
        deterministic points (application sends), passing the deciding
        rule's kind via ``rule`` so the decision is attributed once —
        direct API calls are attributed to the pseudo-rule ``"api"``.
        """
        target = self.shards[shard] if isinstance(shard, int) else shard
        old = self.shards[vehicle.shard]
        if target.index == old.index:
            raise SimulationError(
                f"{vehicle.name} already lives on shard {target.index}"
            )
        if old.failed or target.failed:
            raise SimulationError(
                "live migration runs between two healthy shards"
                " (failover handles dead ones)"
            )
        if vehicle.migrating:
            raise SimulationError(f"{vehicle.name} is already migrating")
        if vehicle.re_enrolling:
            raise SimulationError(
                f"{vehicle.name} is mid re-enrollment; migrate after it"
                " completes"
            )
        vehicle.migrating = True
        started = self.sim.now
        vehicle.manager.drop(old.gateway_id)
        old.manager.drop(vehicle.device_id)
        old.active_vehicles -= 1
        old.migrations_out += 1
        target.receive_migration(vehicle)
        vehicle.migrations += 1
        self._migrations += 1
        vehicle.log(
            self.sim.now,
            "migrate",
            f"shard {old.index} -> shard {target.index}",
        )
        if self._hooks is not None:
            if rule is None:
                # Engine-decided migrations were already attributed by
                # PolicyEngine.decide; direct API calls are attributed
                # here so the policy.migrate counter balances the
                # per-shard migration flow (tracelint policy-balance).
                self._hooks.policy_decision(
                    self.sim.now, "migrate", "api", vehicle.index, target.index
                )
            self._hooks.migrate_started(self, vehicle, old, target)

        def established() -> None:
            vehicle.migrating = False
            self._migration_latencies.add(self.sim.now - started)
            if self._hooks is not None:
                self._hooks.migrate_finished(
                    self, vehicle, self.sim.now - started
                )

        self._re_enroll(
            vehicle,
            target,
            reason=f"migration from shard {old.index}",
            then=lambda: self._establish(vehicle, then=established),
        )

    def _policy_migrate(self, vehicle: Vehicle, shard: GatewayShard) -> bool:
        """The migration decision point, checked at every application send.

        The ``default`` bundle installs the extracted legacy rules —
        roam cadence (profile-driven) ahead of threshold re-balancing —
        so first-match order reproduces the historical check order
        bit-for-bit.  A winning rule names the target shard; ``roam``
        decisions additionally get the roamer bookkeeping the legacy
        path applied (the ``last_roam_records`` marker keeps one record
        count from triggering twice — the post-migration establish
        resumes sending at the same count).
        """
        if not self.policy.has_rules("migrate"):
            return False
        decision = self.policy.decide(
            "migrate", self._policy_state("migrate", vehicle)
        )
        if decision is None:
            return False
        if decision.roam:
            vehicle.last_roam_records = vehicle.records_sent
            vehicle.roams += 1
        self.migrate(
            vehicle, self.shards[decision.target_shard], rule=decision.rule
        )
        return True

    def _re_enroll(self, vehicle, shard, reason, then) -> None:
        """Pull a fresh certificate from ``shard``'s CA, then ``then()``.

        Runs the full priced enrollment pipeline — request on the vehicle
        device, the shard CA's batched issuance queue, reception — but
        keeps the vehicle's pool and routes completion into ``then``
        instead of the first-enrollment bookkeeping.

        One chain-epoch roll can trigger re-enrollment from two paths at
        once (the gateway re-key in :meth:`_establish` and a V2V re-key
        in :meth:`_establish_v2v`); a second request while one is in
        flight is *coalesced* — its continuation just waits for the
        fresh certificate instead of running the pipeline twice.
        """
        if vehicle.re_enrolling:
            self._re_enroll_followups[vehicle.index].append(then)
            vehicle.log(
                self.sim.now, "re-enroll", f"coalesced ({reason})"
            )
            if self._hooks is not None:
                self._hooks.re_enroll_coalesced(self, vehicle)
            return
        vehicle.re_enrolling = True
        self._re_enroll_followups[vehicle.index] = []
        if self._hooks is not None:
            self._hooks.re_enroll_started(self, vehicle, shard, reason)

        def complete() -> None:
            vehicle.re_enrolling = False
            followups = self._re_enroll_followups.pop(vehicle.index, [])
            if self._hooks is not None:
                self._hooks.re_enroll_finished(self, vehicle)
            then()
            for followup in followups:
                followup()

        vehicle.re_enrollments += 1
        self._re_enrollments += 1
        vehicle.log(
            self.sim.now, "re-enroll", f"at shard {shard.index} ({reason})"
        )
        requester = CertificateRequester(
            self.config.curve,
            vehicle.device_id,
            HmacDrbg(
                self.config.seed,
                personalization=b"fleet|%s|enroll|%d"
                % (vehicle.name.encode(), vehicle.re_enrollments),
            ),
        )
        with trace.trace(f"{vehicle.name}:request") as cost:
            request = requester.create_request(
                authenticate=self.config.authenticate_requests
            )
        duration = self.vehicle_device.time_ms(cost)
        self._vehicle_energy.add(self.vehicle_device.energy_mj(cost))

        def submit() -> None:
            target = shard
            if target.failed:
                # The chosen shard died while the request was being
                # computed: hand over to a survivor instead of stranding
                # the request in a dead queue (same accounting as
                # _handover, so the dead shard's active count and the
                # vehicle's handover tally stay truthful for the
                # post-rejoin re-balancer).
                target.active_vehicles -= 1
                target = self._adopt_target(vehicle)
                target.adopt(vehicle)
                vehicle.handovers += 1
                self._handovers += 1
                vehicle.log(
                    self.sim.now,
                    "requeue",
                    f"shard {shard.index} -> shard {target.index}",
                )
            vehicle.log(
                self.sim.now,
                "request",
                f"re-enroll queued at shard {target.index}",
            )
            target.queue.append(
                _QueueEntry(
                    vehicle, requester, request, self.sim.now, complete
                )
            )
            self._pump_ca(target)

        self.sim.schedule_after(duration, submit)

    # -- session establishment -------------------------------------------------

    def _credential_retired(self, vehicle: Vehicle) -> bool:
        """True when the vehicle's certificate chain epoch was rolled."""
        store = self.topology.trust_store
        return (
            store is not None
            and vehicle.credential is not None
            and store.is_retired(
                vehicle.credential.certificate.authority_key_id
            )
        )

    def _establish(self, vehicle: Vehicle, then=None) -> None:
        shard = self.shards[vehicle.shard]
        if shard.failed:
            shard = self._handover(vehicle)
        if self._credential_retired(vehicle):
            # The issuing sub-CA's epoch was rolled by a gateway rejoin:
            # the trust store rejects the old chain, so pull a fresh
            # certificate at the serving shard before establishing.
            self._re_enroll(
                vehicle,
                shard,
                reason="chain epoch rolled",
                then=lambda: self._establish(vehicle, then=then),
            )
            return
        started = self.sim.now
        if self._hooks is not None:
            self._hooks.establish_started(self, vehicle, shard)
        ctx_vehicle = vehicle.manager.context_factory()
        ctx_gateway = shard.manager.context_factory()
        info = get_protocol(self.config.protocol)
        if info.needs_pairwise_psk:
            psk = HmacDrbg(
                self.config.seed,
                personalization=b"fleet|psk|%s" % vehicle.name.encode(),
            ).generate(32)
            install_pairwise_key(ctx_vehicle, ctx_gateway, psk)
        party_v, party_g = info.factory(ctx_vehicle, ctx_gateway)
        transcript = run_protocol(party_v, party_g)
        vehicle_ms = self.vehicle_device.time_ms(party_v.total_cost())
        gateway_ms = shard.device.time_ms(party_g.total_cost())
        self._vehicle_energy.add(
            self.vehicle_device.energy_mj(party_v.total_cost())
        )
        shard.energy_mj += shard.device.energy_mj(party_g.total_cost())
        bus_ms = transcript.total_bytes * self.config.bus_ms_per_byte
        # The vehicle computes locally first; the gateway's share contends
        # the shard's central device with every other establishment and
        # certificate issuance that shard serves.
        _, gateway_end = shard.resource.reserve(
            started + vehicle_ms, gateway_ms
        )
        done = gateway_end + bus_ms

        def finish() -> None:
            vehicle.manager.install(shard.gateway_id, party_v.session_key)
            shard.manager.install(vehicle.device_id, party_g.session_key)
            session = vehicle.manager.session_for(shard.gateway_id)
            vehicle.generation = session.generation
            vehicle.sessions += 1
            shard.sessions_established += 1
            self._sessions_established += 1
            self._establishment_latencies.add(self.sim.now - started)
            if self._hooks is not None:
                self._hooks.establish_finished(
                    self,
                    vehicle,
                    shard,
                    self.sim.now - started,
                    session.generation,
                )
            vehicle.log(
                self.sim.now,
                "established",
                f"generation {session.generation}",
            )
            if vehicle.sessions == 1 and vehicle.v2v_peer_index is not None:
                self._v2v_mark_ready(vehicle)
            if then is not None:
                then()
            self.sim.schedule_after(
                self._send_interval(vehicle), lambda: self._send(vehicle)
            )

        self.sim.schedule_at(done, finish)

    # -- managed traffic ---------------------------------------------------------

    def _profile_of(self, vehicle: Vehicle):
        """The vehicle's compiled behavior profile (None = defaults)."""
        if self.schedule is None or not vehicle.profile:
            return None
        return self.schedule.profiles[vehicle.profile]

    def _records_target(self, vehicle: Vehicle) -> int:
        """Records this vehicle must deliver (profile-aware)."""
        profile = self._profile_of(vehicle)
        if profile is None:
            return self.config.records_per_vehicle
        return profile.records_per_vehicle

    def _send_interval(self, vehicle: Vehicle) -> float:
        """Spacing between this vehicle's records (profile-aware)."""
        profile = self._profile_of(vehicle)
        if profile is None:
            return self.config.send_interval_ms
        return profile.send_interval_ms

    def _release_vehicle(self, vehicle: Vehicle) -> None:
        """Streaming mode: drop state a finished vehicle can never touch.

        The timeline events and the ephemeral pool are dead the moment
        the vehicle reports done; the session manager additionally dies
        unless a V2V pairing can still re-key through it.  The gateway
        side of the session stays installed (replay-storm injections
        verify against it), so this is digest-neutral by construction.
        """
        vehicle.events.clear()
        vehicle.pool = None
        if vehicle.v2v_peer_index is None:
            vehicle.manager = None

    def _send(self, vehicle: Vehicle) -> None:
        if vehicle.records_sent >= self._records_target(vehicle):
            vehicle.done_at = self.sim.now
            self.shards[vehicle.shard].active_vehicles -= 1
            vehicle.log(self.sim.now, "done", f"{vehicle.records_sent} records")
            if self._hooks is not None:
                self._hooks.vehicle_done(self, vehicle)
            if self.config.stream:
                self._release_vehicle(vehicle)
            return
        shard = self.shards[vehicle.shard]
        if shard.failed:
            # The gateway died under an open session: fail over and
            # re-key at a surviving shard (handled inside _establish).
            self._establish(vehicle)
            return
        if self._policy_migrate(vehicle, shard):
            # A migration rule moved the vehicle (roam cadence,
            # threshold re-balance, ...): it resumes sending once
            # re-enrolled and re-established at the target shard.
            return
        # The managers' budget verdict has session side effects (an
        # expired half is dropped by the check), so it is computed
        # exactly once — here, at the legacy call site — and handed to
        # the re-key rules as FleetState.rekey_due.
        rekey_due = vehicle.manager.needs_rekey(
            shard.gateway_id
        ) or shard.manager.needs_rekey(vehicle.device_id)
        decision = None
        if rekey_due or not self.policy.only_default_rekey:
            session_records = 0
            if not self.policy.only_default_rekey:
                # Raw snapshot for budget-tightening rules; .get() is
                # side-effect free, unlike the manager's budget check.
                session = vehicle.manager.sessions.get(shard.gateway_id)
                session_records = (
                    session.records_used if session is not None else 0
                )
            decision = self.policy.decide(
                "rekey",
                self._policy_state(
                    "rekey",
                    vehicle,
                    rekey_due=rekey_due,
                    session_records=session_records,
                ),
            )
        if decision is not None:
            # Policy expired the key on either side — or a rejoined
            # gateway came back with a fresh manager that knows no old
            # keys, or a re-key rule tightened the budget: drop both
            # halves and run a fresh establishment (fresh ephemerals,
            # next generation).
            vehicle.manager.drop(shard.gateway_id)
            shard.manager.drop(vehicle.device_id)
            vehicle.rekeys += 1
            shard.rekeys += 1
            self._rekeys += 1
            vehicle.log(self.sim.now, "rekey", f"after {vehicle.records_sent} records")
            if self._hooks is not None:
                self._hooks.rekey(self, vehicle, shard)
            self._establish(vehicle)
            return
        payload = (
            b"%s|%06d" % (vehicle.name.encode(), vehicle.records_sent)
        ).ljust(self.config.record_bytes, b".")[: self.config.record_bytes]
        with trace.trace(f"{vehicle.name}:send") as send_cost:
            record = vehicle.manager.send(shard.gateway_id, payload)
        self._vehicle_energy.add(self.vehicle_device.energy_mj(send_cost))
        with trace.trace("gateway:receive") as recv_cost:
            received = shard.manager.receive(vehicle.device_id, record)
        if received != payload:
            raise SimulationError(
                f"gateway decrypted wrong payload for {vehicle.name}"
            )
        shard.energy_mj += shard.device.energy_mj(recv_cost)
        shard.resource.reserve(
            self.sim.now, shard.device.time_ms(recv_cost)
        )
        if self._capture_wire:
            # The replay-storm adversary records the wire verbatim.
            self._captured_records[vehicle.index] = record
        vehicle.records_sent += 1
        self._records_sent += 1
        if self._hooks is not None:
            self._hooks.record_sent(self, vehicle, shard, len(record))
        send_ms = self.vehicle_device.time_ms(send_cost)
        bus_ms = len(record) * self.config.bus_ms_per_byte
        self.sim.schedule_after(
            self._send_interval(vehicle) + send_ms + bus_ms,
            lambda: self._send(vehicle),
        )

    # -- V2V sessions ------------------------------------------------------------

    def _v2v_mark_ready(self, vehicle: Vehicle) -> None:
        """A paired vehicle finished its first gateway establishment."""
        self._v2v_ready.add(vehicle.index)
        peer = self.vehicles[vehicle.v2v_peer_index]
        if peer.index not in self._v2v_ready:
            return
        pair = (min(vehicle.index, peer.index), max(vehicle.index, peer.index))
        if pair in self._v2v_started:
            return
        self._v2v_started.add(pair)
        self._establish_v2v(
            self.vehicles[pair[0]], self.vehicles[pair[1]], rekey=False
        )

    def _establish_v2v(
        self, initiator: Vehicle, responder: Vehicle, rekey: bool
    ) -> None:
        """Direct pairwise establishment — no gateway in the data path.

        Both endpoints run the full protocol on the (slow) vehicle device
        model; the messages alternate strictly, so the simulated duration
        is the sum of both computation shares plus the bus transfer.  A
        cross-shard pair carries certificates from two different shard
        CAs, which the trust store resolves to the fleet root on both
        sides — the chained-validation path this topology exists for.
        """
        for vehicle in (initiator, responder):
            if self._credential_retired(vehicle):
                # A gateway rejoin rolled this endpoint's chain epoch
                # since its last enrollment; the peer's trust store would
                # reject the stale chain, so re-enroll first and retry.
                shard = self.shards[vehicle.shard]
                if shard.failed:
                    shard = self._handover(vehicle)
                self._re_enroll(
                    vehicle,
                    shard,
                    reason="chain epoch rolled (v2v)",
                    then=lambda: self._establish_v2v(
                        initiator, responder, rekey
                    ),
                )
                return
        started = self.sim.now
        if self._hooks is not None:
            self._hooks.v2v_started(self, initiator, responder, rekey)
        ctx_initiator = initiator.manager.context_factory()
        ctx_responder = responder.manager.context_factory()
        info = get_protocol(self.config.protocol)
        if info.needs_pairwise_psk:
            psk = HmacDrbg(
                self.config.seed,
                personalization=b"fleet|v2v-psk|%s|%s"
                % (initiator.name.encode(), responder.name.encode()),
            ).generate(32)
            install_pairwise_key(ctx_initiator, ctx_responder, psk)
        party_i, party_r = info.factory(ctx_initiator, ctx_responder)
        transcript = run_protocol(party_i, party_r)
        initiator_ms = self.vehicle_device.time_ms(party_i.total_cost())
        responder_ms = self.vehicle_device.time_ms(party_r.total_cost())
        self._vehicle_energy.add(
            self.vehicle_device.energy_mj(party_i.total_cost())
        )
        self._vehicle_energy.add(
            self.vehicle_device.energy_mj(party_r.total_cost())
        )
        bus_ms = transcript.total_bytes * self.config.bus_ms_per_byte
        done = started + initiator_ms + responder_ms + bus_ms

        def finish() -> None:
            initiator.manager.install(responder.device_id, party_i.session_key)
            # Both vehicles run initiator-role managers; the responding
            # half of a V2V pair takes the "B" direction on the wire.
            responder.manager.install(
                initiator.device_id, party_r.session_key, role="B"
            )
            initiator.v2v_sessions += 1
            responder.v2v_sessions += 1
            self._v2v_sessions += 1
            if rekey:
                self._v2v_rekeys += 1
            if initiator.shard != responder.shard:
                self._v2v_cross_shard += 1
            self._v2v_latencies.add(self.sim.now - started)
            if self._hooks is not None:
                self._hooks.v2v_finished(
                    self,
                    initiator,
                    responder,
                    self.sim.now - started,
                    initiator.shard != responder.shard,
                )
            detail = f"with {responder.name}" + (
                " (cross-shard)" if initiator.shard != responder.shard else ""
            )
            initiator.log(self.sim.now, "v2v-established", detail)
            responder.log(
                self.sim.now, "v2v-established", f"with {initiator.name}"
            )
            self.sim.schedule_after(
                self.config.send_interval_ms,
                lambda: self._send_v2v(initiator, responder),
            )

        self.sim.schedule_at(done, finish)

    def _send_v2v(self, initiator: Vehicle, responder: Vehicle) -> None:
        if initiator.v2v_records_sent >= self.config.v2v_records:
            initiator.v2v_done_at = self.sim.now
            responder.v2v_done_at = self.sim.now
            initiator.log(
                self.sim.now,
                "v2v-done",
                f"{initiator.v2v_records_sent} records to {responder.name}",
            )
            responder.log(self.sim.now, "v2v-done", f"from {initiator.name}")
            return
        if initiator.manager.needs_rekey(
            responder.device_id
        ) or responder.manager.needs_rekey(initiator.device_id):
            initiator.manager.drop(responder.device_id)
            responder.manager.drop(initiator.device_id)
            initiator.log(
                self.sim.now,
                "v2v-rekey",
                f"after {initiator.v2v_records_sent} records",
            )
            self._establish_v2v(initiator, responder, rekey=True)
            return
        payload = (
            b"%s>%s|%06d"
            % (
                initiator.name.encode(),
                responder.name.encode(),
                initiator.v2v_records_sent,
            )
        ).ljust(self.config.record_bytes, b".")[: self.config.record_bytes]
        with trace.trace(f"{initiator.name}:v2v-send") as send_cost:
            record = initiator.manager.send(responder.device_id, payload)
        self._vehicle_energy.add(self.vehicle_device.energy_mj(send_cost))
        with trace.trace(f"{responder.name}:v2v-receive") as recv_cost:
            received = responder.manager.receive(initiator.device_id, record)
        if received != payload:
            raise SimulationError(
                f"{responder.name} decrypted wrong V2V payload from"
                f" {initiator.name}"
            )
        self._vehicle_energy.add(self.vehicle_device.energy_mj(recv_cost))
        initiator.v2v_records_sent += 1
        self._v2v_records_sent += 1
        if self._hooks is not None:
            self._hooks.v2v_record(self, initiator, responder)
        send_ms = self.vehicle_device.time_ms(send_cost)
        recv_ms = self.vehicle_device.time_ms(recv_cost)
        bus_ms = len(record) * self.config.bus_ms_per_byte
        self.sim.schedule_after(
            self.config.send_interval_ms + send_ms + bus_ms + recv_ms,
            lambda: self._send_v2v(initiator, responder),
        )

    # -- adversarial injections --------------------------------------------------

    def _charge_gateway(self, shard: GatewayShard, cost) -> None:
        """Price defensive work on the shard's device and resource.

        The adversary's own compute is free (it runs on attacker
        hardware), but every verification/validation the *gateway* does
        to reject an attack contends the shard resource — the DoS
        pressure legitimate traffic feels.
        """
        shard.energy_mj += shard.device.energy_mj(cost)
        shard.resource.reserve(self.sim.now, shard.device.time_ms(cost))

    def _inject_replay_storm(self, spec: ReplayStorm, log: dict) -> None:
        """Replay captured vehicle→gateway records at the target shard.

        Victims are the vehicles currently served by the target shard
        whose traffic the adversary captured, cycled in index order.
        Every replay runs the real record channel on the gateway: a
        verbatim replay dies on the sequence window, a replay across a
        re-key dies on the MAC.  An accepted record would count as a
        success (and is asserted zero by the benchmarks).
        """
        self._last_storm_ms = self.sim.now
        shard = self.shards[spec.target_shard]
        if shard.failed:
            # Nothing listens: the storm hits a dead gateway.
            log["attempts"] += spec.replays
            log["rejected"] += spec.replays
            return
        victims = [
            vehicle
            for vehicle in self.vehicles
            if vehicle.shard == shard.index
            and vehicle.index in self._captured_records
        ]
        if not victims:
            # A storm with nothing to replay would report a vacuous
            # defense success (0/0 rejected); fail loudly instead so the
            # misconfigured timing is fixed rather than misread.
            raise ScenarioError(
                f"replay-storm at {spec.at_ms} ms fired before any"
                f" application record was captured at shard"
                f" {shard.index}; schedule it after traffic starts"
            )
        for attempt in range(spec.replays):
            victim = victims[attempt % len(victims)]
            record = self._captured_records[victim.index]
            log["attempts"] += 1
            with trace.trace("gateway:replay-verify") as cost:
                try:
                    shard.manager.receive(victim.device_id, record)
                except (AuthenticationError, SessionExpired):
                    log["rejected"] += 1
                else:
                    log["succeeded"] += 1
            self._charge_gateway(shard, cost)

    def _inject_stale_cert_flood(self, spec: StaleCertFlood, log: dict) -> None:
        """Present retired chain-epoch certificates for validation.

        Each attempt runs the full trust-chain resolution against the
        fleet store on the rejoined gateway; the retired epoch must
        raise the chain-epoch :class:`~repro.errors.CertificateError`.
        A validation that *passes* is a successful stale-credential
        acceptance (asserted zero downstream).
        """
        store = self.topology.trust_store
        certs = self._stale_certs
        if store is None or not certs:
            # compile_scenario guarantees a rejoin is scheduled, so an
            # empty capture means the shard failed before issuing any
            # leaf certificate — a vacuous 0/0 "defense" if we returned.
            raise ScenarioError(
                f"stale-cert-flood at {spec.at_ms} ms has no retired"
                " certificates to present: the failed shard issued"
                " nothing before it died; move the failure later or the"
                " arrivals earlier"
            )
        shard = self.shards[self.config.fail_shard]
        for attempt in range(spec.attempts):
            certificate = certs[attempt % len(certs)]
            log["attempts"] += 1
            with trace.trace("gateway:chain-validate") as cost:
                try:
                    store.resolve_and_validate(certificate, DEFAULT_NOW)
                except CertificateError:
                    log["rejected"] += 1
                else:
                    log["succeeded"] += 1
            self._charge_gateway(shard, cost)

    def _inject_ca_flood(
        self, index: int, spec: CaQueueFlood, log: dict
    ) -> None:
        """Enqueue forged enrollment requests at the target shard CA.

        Each request carries a real (but forged) proof-of-possession
        signature — made with a scalar unrelated to the request point —
        so the CA's batched screening pass must reject it.  The requests
        take real slots in the issuance queue and real verification time
        in the service window: the DoS legitimate enrollments feel.
        """
        shard = self.shards[spec.target_shard]
        if shard.failed:
            log["attempts"] += spec.requests
            log["rejected"] += spec.requests
            return
        rng = HmacDrbg(
            self.config.seed,
            personalization=b"scenario|ca-flood|%d" % index,
        )
        curve = self.config.curve
        for j in range(spec.requests):
            scalar = rng.random_scalar(curve.n)
            point = mul_base(scalar, curve)
            subject = device_id(f"attacker{index:02d}-{j:04d}")
            unsigned = CertificateRequest(subject, point)
            forged = sign(
                curve, rng.random_scalar(curve.n), unsigned.signed_payload()
            )
            log["attempts"] += 1
            shard.queue.append(
                _QueueEntry(
                    vehicle=None,
                    requester=None,
                    request=CertificateRequest(
                        subject, point, signature=forged
                    ),
                    queued_at=self.sim.now,
                    adversarial=index,
                )
            )
        self._pump_ca(shard)

    def _run_injection(self, index: int, spec) -> None:
        """Dispatch one scheduled injection to its executor."""
        log = self._injection_log[index]
        if isinstance(spec, ReplayStorm):
            self._inject_replay_storm(spec, log)
        elif isinstance(spec, StaleCertFlood):
            self._inject_stale_cert_flood(spec, log)
        elif isinstance(spec, CaQueueFlood):
            self._inject_ca_flood(index, spec, log)
        else:  # pragma: no cover - compile_scenario validates kinds
            raise SimulationError(f"unknown injection {spec!r}")
        if self._hooks is not None:
            self._hooks.injection_ran(self, index, log["kind"], log)

    # -- driving -----------------------------------------------------------------

    def run(self, max_events: int = 5_000_000) -> FleetResult:
        """Run the full storm to quiescence and aggregate the stats.

        Executes under the :class:`FleetConfig`'s ``backend`` (scoped
        via :func:`repro.backend.use_backend`; ``None`` keeps the
        ambient backend).  Backends are bit-parity, so the resulting
        :class:`~repro.fleet.stats.FleetStats` digest is independent of
        the selection.

        With ``workers > 1`` and a provably shard-independent
        configuration the shards execute in worker processes and the
        snapshots merge at the barrier (:mod:`repro.fleet.parallel`);
        the merged digest is bit-identical to the serial one.  Coupled
        configurations fall back to the serial loop.
        """
        if self._plan is not None:
            from .parallel import run_parallel

            return run_parallel(
                self.config,
                self.scenario,
                self.schedule,
                self._plan,
                obs=self.obs,
                max_events=max_events,
            )
        with use_backend(self.config.backend):
            return self._run(max_events)

    # -- process-parallel support -------------------------------------------

    def _predicted_shard(self, vehicle: Vehicle) -> int:
        """The shard a vehicle will be assigned to, computed statically.

        Only valid under the parallel-execution preconditions
        (:func:`repro.fleet.parallel.partition_plan`): static-hash
        placement with every shard alive, where assignment is a pure
        function of the vehicle identity (or its scenario shard pin) —
        the same arithmetic :meth:`FleetTopology.assign` runs.
        """
        if vehicle.pinned_shard is not None:
            return vehicle.pinned_shard
        digest = sha256(b"fleet|shard-assign|" + vehicle.device_id)
        return int.from_bytes(digest[:8], "big") % self.config.shards

    def _run_partition(self, owned: frozenset, max_events: int) -> None:
        """Drive only the event streams of the ``owned`` shards.

        Schedules arrivals for vehicles statically assigned to an owned
        shard and injections targeting an owned shard, in the exact
        relative order the serial loop schedules them — so by induction
        every owned shard sees a bit-identical event stream (shard
        streams are independent under the partition-plan preconditions,
        and co-timed events keep their scheduling order because omitted
        foreign events never interleave *within* a shard's stream).
        Runs under the caller's backend scope; stats assembly is the
        caller's job (:mod:`repro.fleet.parallel` merges snapshots).
        """
        if self._hooks is not None:
            self._hooks.run_started(self)
        for vehicle in self.vehicles:
            if self._predicted_shard(vehicle) not in owned:
                continue
            self.sim.schedule_at(
                vehicle.arrival_ms, (lambda v: lambda: self._arrive(v))(vehicle)
            )
        if self.schedule is not None:
            for index, spec in enumerate(self.schedule.injections):
                if getattr(spec, "target_shard", None) not in owned:
                    continue
                self.sim.schedule_at(
                    spec.at_ms,
                    (
                        lambda i, s: lambda: self._run_injection(i, s)
                    )(index, spec),
                )
        self.sim.run(max_events=max_events)
        unfinished = [
            v.name
            for v in self.vehicles
            if v.done_at is None and self._predicted_shard(v) in owned
        ]
        if unfinished:
            raise SimulationError(
                f"fleet partition ended with unfinished vehicles:"
                f" {unfinished[:5]}"
            )

    def _run(self, max_events: int) -> FleetResult:
        """The storm itself (already scoped to the configured backend)."""
        if self._hooks is not None:
            self._hooks.run_started(self)
        for vehicle in self.vehicles:
            self.sim.schedule_at(
                vehicle.arrival_ms, (lambda v: lambda: self._arrive(v))(vehicle)
            )
        if self.config.shard_fail_at_ms is not None:
            self.sim.schedule_at(
                self.config.shard_fail_at_ms, self._fail_shard
            )
        if self.config.shard_rejoin_at_ms is not None:
            self.sim.schedule_at(
                self.config.shard_rejoin_at_ms, self._rejoin_shard
            )
        if self.schedule is not None:
            for index, spec in enumerate(self.schedule.injections):
                self.sim.schedule_at(
                    spec.at_ms,
                    (
                        lambda i, s: lambda: self._run_injection(i, s)
                    )(index, spec),
                )
        self.sim.run(max_events=max_events)
        unfinished = [v.name for v in self.vehicles if v.done_at is None]
        if unfinished:
            raise SimulationError(
                f"fleet run ended with unfinished vehicles: {unfinished[:5]}"
            )
        unfinished_pairs = [
            pair
            for pair in self.v2v_pairs
            if self.vehicles[pair[0]].v2v_done_at is None
        ]
        if unfinished_pairs:
            raise SimulationError(
                f"fleet run ended with unfinished V2V pairs:"
                f" {unfinished_pairs[:5]}"
            )
        now = self.sim.now
        per_shard = tuple(shard.stats(now) for shard in self.shards)
        merged = merge_shard_stats(per_shard)
        stats = FleetStats(
            vehicles=len(self.vehicles),
            enrollments=sum(1 for v in self.vehicles if v.enrolled),
            sessions_established=self._sessions_established,
            rekeys=self._rekeys,
            records_sent=self._records_sent,
            duration_ms=now,
            ca_busy_ms=merged["ca_busy_ms"],
            # Mean per-shard utilisation: summed busy time over the
            # wall-clock available across all shard resources.  For one
            # shard this is exactly the resource's own utilisation (PR 1
            # parity); for M shards it stays a 0–1-ish load figure
            # instead of an M-fold inflated one.
            ca_utilisation=(
                merged["ca_busy_ms"] / (now * len(per_shard))
                if now > 0
                else 0.0
            ),
            ca_batches=merged["ca_batches"],
            ca_max_batch=merged["ca_max_batch"],
            enrollment_latency=self._enrollment_latencies.summary(),
            establishment_latency=self._establishment_latencies.summary(),
            vehicle_energy_mj=self._vehicle_energy.value,
            ca_energy_mj=merged["ca_energy_mj"],
            per_shard=per_shard,
            ca_queue_latency=self._queue_latencies.summary(),
            v2v_sessions=self._v2v_sessions,
            v2v_rekeys=self._v2v_rekeys,
            v2v_cross_shard=self._v2v_cross_shard,
            v2v_records_sent=self._v2v_records_sent,
            v2v_latency=self._v2v_latencies.summary(),
            handovers=self._handovers,
            migrations=self._migrations,
            rejoins=self._rejoins,
            re_enrollments=self._re_enrollments,
            migration_latency=self._migration_latencies.summary(),
            scenario=(
                self.scenario.name if self.scenario is not None else ""
            ),
            policy=self.config.policy or "",
            profile_counts=(
                self.schedule.profile_counts
                if self.schedule is not None
                else ()
            ),
            injection_stats=tuple(
                InjectionStats(
                    kind=log["kind"],
                    at_ms=log["at_ms"],
                    attempts=log["attempts"],
                    rejected=log["rejected"],
                    succeeded=log["succeeded"],
                )
                for log in self._injection_log
            ),
        )
        if self._hooks is not None:
            self._hooks.run_finished(self, stats)
        return FleetResult(stats=stats, vehicles=self.vehicles, obs=self.obs)


def run_fleet(
    config: FleetConfig | None = None,
    scenario: "Scenario | None" = None,
    backend: str | None = None,
    obs=None,
) -> FleetResult:
    """Convenience one-shot: build an orchestrator and run it.

    Args:
        config: fleet shape and policies (defaults to ``FleetConfig()``).
        scenario: optional declarative workload
            (:class:`~repro.fleet.scenario.Scenario`); ``None`` runs the
            legacy uniform arrival storm.
        backend: crypto backend override for this run; equivalent to
            setting ``config.backend`` and wins over it when both are
            given.  Bit-parity by contract, so the stats digest does not
            depend on it.
        obs: optional :class:`repro.obs.Observer` collecting spans,
            metrics and heartbeats for this run (also returned on
            ``FleetResult.obs``).  Observability is digest-neutral:
            attaching an observer never changes simulated results.

    Examples:
        A tiny deterministic storm (every number below is a pure
        function of the seed)::

            >>> from repro.fleet import FleetConfig, run_fleet
            >>> stats = run_fleet(FleetConfig(
            ...     n_vehicles=2, seed=b"docs-fleet", records_per_vehicle=2,
            ...     max_records=2, arrival_spread_ms=5.0)).stats
            >>> stats.vehicles, stats.enrollments, stats.sessions_established
            (2, 2, 2)
            >>> stats.records_sent
            4

        The same workload under the accelerated backend digests
        bit-identically::

            >>> fast = run_fleet(FleetConfig(
            ...     n_vehicles=2, seed=b"docs-fleet", records_per_vehicle=2,
            ...     max_records=2, arrival_spread_ms=5.0), backend="accelerated").stats
            >>> fast.digest() == stats.digest()
            True
    """
    if config is None:
        config = FleetConfig()
    if backend is not None:
        config = dataclasses.replace(config, backend=backend)
    return FleetOrchestrator(config, scenario=scenario, obs=obs).run()
