"""Fleet-scale session orchestration on the discrete-event simulator.

The paper's evaluation establishes one session between two stations; the
:class:`FleetOrchestrator` scales that scenario to a whole fleet: ``N``
vehicles concurrently work through ECQV enrollment at a contended central
CA, dynamic key derivation with the gateway, and managed application
traffic whose session keys expire and re-key under a
:class:`~repro.protocols.SessionPolicy` — the enforced-lifetime story the
paper motivates, at production scale.

Every computation runs the real cryptography once, is priced on the
hardware cost model, and is laid onto the
:class:`~repro.sim.engine.Simulator` timeline:

* each vehicle computes on its own (slow, constrained) device model;
* all CA/gateway computation contends a single
  :class:`~repro.sim.engine.Resource` on the (fast) central device —
  issuance requests queue up and are served in **batches** through
  :meth:`~repro.ecqv.ca.CertificateAuthority.issue_batch`, so a deeper
  queue amortizes into one shared Jacobian normalization (a host
  wall-clock saving; the priced cost model folds normalization into
  the per-multiplication events);
* ephemeral pools (:class:`~repro.protocols.pool.EphemeralPool`) built
  with :func:`~repro.ec.mul_base_batch` amortize Op1 across sessions.

Determinism: all randomness flows from seeded DRBGs and one seeded
``random.Random`` for arrival jitter, so two runs with equal
:class:`FleetConfig` produce bit-identical :class:`~repro.fleet.stats.FleetStats`.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from .. import trace
from ..ec import Curve, SECP256R1
from ..ecqv import CertificateAuthority, CertificateRequester
from ..errors import SimulationError
from ..hardware import DeviceModel, get_device
from ..primitives import HmacDrbg, sha256
from ..protocols import (
    SessionContext,
    SessionManager,
    SessionPolicy,
    install_pairwise_key,
    run_protocol,
)
from ..protocols.pool import EphemeralPool
from ..protocols.registry import get_protocol
from ..sim.engine import Resource, Simulator
from ..testbed import DEFAULT_NOW, device_id
from .stats import FleetStats, LatencySummary
from .vehicle import Vehicle

#: Identity of the central CA/gateway device (paper Fig. 1's RPi 4).
GATEWAY_NAME = "fleet-gateway"


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of one fleet orchestration run.

    Attributes:
        n_vehicles: fleet size (one initiator per vehicle).
        seed: master seed; every DRBG stream and the arrival jitter
            derive from it, making runs bit-reproducible.
        curve: domain parameters for all credentials and sessions.
        protocol: registry name of the KD protocol vehicles run against
            the gateway (dynamic protocols re-key with fresh ephemerals).
        max_age_ms: session-key wall-clock budget (policy, sim ms).
        max_records: session-key record budget (policy).
        records_per_vehicle: application records each vehicle must
            deliver before it is done.
        send_interval_ms: spacing between a vehicle's records.
        arrival_spread_ms: enrollment arrivals are jittered uniformly
            over ``[0, arrival_spread_ms)``.
        vehicle_device: device-model name vehicles compute on.
        ca_device: device-model name the CA/gateway computes on.
        bus_ms_per_byte: transfer cost per wire byte, charged on both
            handshake transcripts and application records (stands in
            for the CAN-FD stack at fleet granularity).
        record_bytes: application payload size per record.
        pool_size: ephemeral pool entries per vehicle (0 disables).
        ca_batch_limit: max requests the CA folds into one issuance batch.
        use_batch_ec: route CA issuance and Op1 through the batched EC
            APIs.  ``False`` disables ephemeral pools (so every Op1
            pays its ``ec.mul_base`` on the timeline) and issues
            certificates scalar-at-a-time.  Note the *priced* cost of
            issuance itself is identical either way — the cost model
            folds normalization into the ``ec.mul_base`` event — so
            this flag changes simulated time only through pooling;
            the batched-normalization win is a host wall-clock effect
            measured by ``bench_fleet_scale.py``.
        cert_validity_seconds: certificate-session length for issued
            credentials.
    """

    n_vehicles: int = 16
    seed: bytes = b"fleet-storm"
    curve: Curve = SECP256R1
    protocol: str = "sts"
    max_age_ms: float = 600_000.0
    max_records: int = 25
    records_per_vehicle: int = 50
    send_interval_ms: float = 25.0
    arrival_spread_ms: float = 1_000.0
    vehicle_device: str = "stm32f767"
    ca_device: str = "rpi4"
    bus_ms_per_byte: float = 0.002
    record_bytes: int = 32
    pool_size: int = 4
    ca_batch_limit: int = 64
    use_batch_ec: bool = True
    cert_validity_seconds: int = 24 * 3600

    def __post_init__(self) -> None:
        if self.n_vehicles <= 0:
            raise SimulationError("fleet needs at least one vehicle")
        if self.records_per_vehicle <= 0 or self.max_records <= 0:
            raise SimulationError("record budgets must be positive")
        if self.send_interval_ms <= 0 or self.max_age_ms <= 0:
            raise SimulationError("intervals must be positive")
        if self.ca_batch_limit <= 0:
            raise SimulationError("ca_batch_limit must be positive")
        get_protocol(self.protocol)  # fail fast on unknown names


@dataclass
class FleetResult:
    """Everything a fleet run produces."""

    stats: FleetStats
    vehicles: list[Vehicle] = field(default_factory=list)


class FleetOrchestrator:
    """Drives a whole fleet through enrollment, sessions and re-keys."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.ca_resource = Resource("central-ca")
        self.vehicle_device: DeviceModel = get_device(config.vehicle_device)
        self.ca_device: DeviceModel = get_device(config.ca_device)
        seed = config.seed
        self.ca = CertificateAuthority(
            config.curve,
            device_id("central-ca"),
            HmacDrbg(seed, personalization=b"fleet|ca"),
            clock=lambda: DEFAULT_NOW,
        )
        # The gateway is provisioned before the storm begins (it is the
        # same central device as the CA), so its credential and initial
        # ephemeral pool are not on the simulated timeline.
        gw_requester = CertificateRequester(
            config.curve,
            device_id(GATEWAY_NAME),
            HmacDrbg(seed, personalization=b"fleet|gateway|enroll"),
        )
        gw_issued = self.ca.issue(
            gw_requester.create_request(),
            validity_seconds=config.cert_validity_seconds,
        )
        self.gateway_credential = gw_requester.process_response(
            gw_issued, self.ca.public_key
        )
        self.gateway_id = self.gateway_credential.subject_id
        self._gateway_pool: EphemeralPool | None = None
        self._gateway_pool_rng = HmacDrbg(
            seed, personalization=b"fleet|gateway|pool"
        )
        if config.use_batch_ec and config.pool_size > 0:
            self._gateway_pool = EphemeralPool(
                config.curve, self._gateway_pool_rng, 2 * config.n_vehicles
            )
        policy = SessionPolicy(
            max_age_seconds=config.max_age_ms / 1000.0,
            max_records=config.max_records,
        )
        clock = lambda: self.sim.now / 1000.0  # noqa: E731
        self.gateway_manager = SessionManager(
            self._gateway_context,
            "B",
            protocol=config.protocol,
            policy=policy,
            clock=clock,
        )
        self._policy = policy
        self._clock = clock
        jitter = random.Random(
            int.from_bytes(sha256(seed + b"|arrivals"), "big")
        )
        self.vehicles: list[Vehicle] = []
        for index in range(config.n_vehicles):
            name = f"veh{index:04d}"
            arrival = jitter.uniform(0.0, config.arrival_spread_ms)
            vehicle = Vehicle(
                name=name,
                index=index,
                device_id=device_id(name),
                arrival_ms=arrival,
            )
            vehicle.manager = SessionManager(
                self._vehicle_context_factory(vehicle),
                "A",
                protocol=config.protocol,
                policy=policy,
                clock=clock,
            )
            self.vehicles.append(vehicle)
        self._ca_queue: deque[tuple[Vehicle, CertificateRequester, object]] = (
            deque()
        )
        self._ca_issuing = False
        self._ca_batches = 0
        self._ca_max_batch = 0
        self._enrollment_latencies: list[float] = []
        self._establishment_latencies: list[float] = []
        self._sessions_established = 0
        self._rekeys = 0
        self._records_sent = 0
        self._vehicle_energy_mj = 0.0
        self._ca_energy_mj = 0.0
        self._gateway_session_counter = 0

    # -- deterministic context factories --------------------------------------

    def _session_context(
        self, credential, personalization: bytes, pool: EphemeralPool | None
    ) -> SessionContext:
        return SessionContext(
            credential=credential,
            ca_public=self.ca.public_key,
            rng=HmacDrbg(self.config.seed, personalization=personalization),
            now=DEFAULT_NOW,
            ephemeral_pool=pool,
        )

    def _gateway_context(self) -> SessionContext:
        self._gateway_session_counter += 1
        return self._session_context(
            self.gateway_credential,
            b"fleet|gateway|sess|%d" % self._gateway_session_counter,
            self._gateway_pool,
        )

    def _vehicle_context_factory(self, vehicle: Vehicle):
        def factory() -> SessionContext:
            vehicle.session_counter += 1
            return self._session_context(
                vehicle.credential,
                b"fleet|%s|sess|%d"
                % (vehicle.name.encode(), vehicle.session_counter),
                vehicle.pool,
            )

        return factory

    # -- enrollment ------------------------------------------------------------

    def _arrive(self, vehicle: Vehicle) -> None:
        vehicle.log(self.sim.now, "arrive")
        requester = CertificateRequester(
            self.config.curve,
            vehicle.device_id,
            HmacDrbg(
                self.config.seed,
                personalization=b"fleet|%s|enroll" % vehicle.name.encode(),
            ),
        )
        with trace.trace(f"{vehicle.name}:request") as cost:
            request = requester.create_request()
        duration = self.vehicle_device.time_ms(cost)
        self._vehicle_energy_mj += self.vehicle_device.energy_mj(cost)

        def submit() -> None:
            vehicle.log(self.sim.now, "request", "queued at CA")
            self._ca_queue.append((vehicle, requester, request))
            self._pump_ca()

        self.sim.schedule_after(duration, submit)

    def _pump_ca(self) -> None:
        """Serve the CA queue: one batched issuance at a time."""
        if self._ca_issuing or not self._ca_queue:
            return
        batch_size = min(len(self._ca_queue), self.config.ca_batch_limit)
        batch = [self._ca_queue.popleft() for _ in range(batch_size)]
        requests = [request for _, _, request in batch]
        with trace.trace("ca:issue") as cost:
            if self.config.use_batch_ec:
                issued = self.ca.issue_batch(
                    requests,
                    validity_seconds=self.config.cert_validity_seconds,
                )
            else:
                issued = [
                    self.ca.issue(
                        request,
                        validity_seconds=self.config.cert_validity_seconds,
                    )
                    for request in requests
                ]
        duration = self.ca_device.time_ms(cost)
        self._ca_energy_mj += self.ca_device.energy_mj(cost)
        _, end = self.ca_resource.reserve(self.sim.now, duration)
        self._ca_issuing = True
        self._ca_batches += 1
        self._ca_max_batch = max(self._ca_max_batch, batch_size)

        def deliver() -> None:
            self._ca_issuing = False
            for (vehicle, requester, _), certificate in zip(batch, issued):
                self._receive_certificate(vehicle, requester, certificate)
            self._pump_ca()

        self.sim.schedule_at(end, deliver)

    def _receive_certificate(self, vehicle, requester, issued) -> None:
        vehicle.log(self.sim.now, "certified", f"serial {issued.certificate.serial}")
        with trace.trace(f"{vehicle.name}:reception") as cost:
            vehicle.credential = requester.process_response(
                issued, self.ca.public_key
            )
            if self.config.use_batch_ec and self.config.pool_size > 0:
                vehicle.pool = EphemeralPool(
                    self.config.curve,
                    HmacDrbg(
                        self.config.seed,
                        personalization=b"fleet|%s|pool"
                        % vehicle.name.encode(),
                    ),
                    self.config.pool_size,
                )
        duration = self.vehicle_device.time_ms(cost)
        self._vehicle_energy_mj += self.vehicle_device.energy_mj(cost)

        def enrolled() -> None:
            vehicle.enrolled_at = self.sim.now
            self._enrollment_latencies.append(
                self.sim.now - vehicle.arrival_ms
            )
            vehicle.log(self.sim.now, "enrolled")
            self._establish(vehicle)

        self.sim.schedule_after(duration, enrolled)

    # -- session establishment -------------------------------------------------

    def _establish(self, vehicle: Vehicle) -> None:
        started = self.sim.now
        ctx_vehicle = vehicle.manager.context_factory()
        ctx_gateway = self.gateway_manager.context_factory()
        info = get_protocol(self.config.protocol)
        if info.needs_pairwise_psk:
            psk = HmacDrbg(
                self.config.seed,
                personalization=b"fleet|psk|%s" % vehicle.name.encode(),
            ).generate(32)
            install_pairwise_key(ctx_vehicle, ctx_gateway, psk)
        party_v, party_g = info.factory(ctx_vehicle, ctx_gateway)
        transcript = run_protocol(party_v, party_g)
        vehicle_ms = self.vehicle_device.time_ms(party_v.total_cost())
        gateway_ms = self.ca_device.time_ms(party_g.total_cost())
        self._vehicle_energy_mj += self.vehicle_device.energy_mj(
            party_v.total_cost()
        )
        self._ca_energy_mj += self.ca_device.energy_mj(party_g.total_cost())
        bus_ms = transcript.total_bytes * self.config.bus_ms_per_byte
        # The vehicle computes locally first; the gateway's share contends
        # the central device with every other vehicle's establishment and
        # with certificate issuance.
        _, gateway_end = self.ca_resource.reserve(
            started + vehicle_ms, gateway_ms
        )
        done = gateway_end + bus_ms

        def finish() -> None:
            vehicle.manager.install(self.gateway_id, party_v.session_key)
            self.gateway_manager.install(
                vehicle.device_id, party_g.session_key
            )
            session = vehicle.manager.session_for(self.gateway_id)
            vehicle.generation = session.generation
            vehicle.sessions += 1
            self._sessions_established += 1
            self._establishment_latencies.append(self.sim.now - started)
            vehicle.log(
                self.sim.now,
                "established",
                f"generation {session.generation}",
            )
            self.sim.schedule_after(
                self.config.send_interval_ms, lambda: self._send(vehicle)
            )

        self.sim.schedule_at(done, finish)

    # -- managed traffic ---------------------------------------------------------

    def _send(self, vehicle: Vehicle) -> None:
        if vehicle.records_sent >= self.config.records_per_vehicle:
            vehicle.done_at = self.sim.now
            vehicle.log(self.sim.now, "done", f"{vehicle.records_sent} records")
            return
        if vehicle.manager.needs_rekey(
            self.gateway_id
        ) or self.gateway_manager.needs_rekey(vehicle.device_id):
            # Policy expired the key on either side: drop both halves and
            # run a fresh establishment (fresh ephemerals, next generation).
            vehicle.manager.sessions.pop(self.gateway_id, None)
            self.gateway_manager.sessions.pop(vehicle.device_id, None)
            vehicle.rekeys += 1
            self._rekeys += 1
            vehicle.log(self.sim.now, "rekey", f"after {vehicle.records_sent} records")
            self._establish(vehicle)
            return
        payload = (
            b"%s|%06d" % (vehicle.name.encode(), vehicle.records_sent)
        ).ljust(self.config.record_bytes, b".")[: self.config.record_bytes]
        with trace.trace(f"{vehicle.name}:send") as send_cost:
            record = vehicle.manager.send(self.gateway_id, payload)
        self._vehicle_energy_mj += self.vehicle_device.energy_mj(send_cost)
        with trace.trace("gateway:receive") as recv_cost:
            received = self.gateway_manager.receive(
                vehicle.device_id, record
            )
        if received != payload:
            raise SimulationError(
                f"gateway decrypted wrong payload for {vehicle.name}"
            )
        self._ca_energy_mj += self.ca_device.energy_mj(recv_cost)
        self.ca_resource.reserve(
            self.sim.now, self.ca_device.time_ms(recv_cost)
        )
        vehicle.records_sent += 1
        self._records_sent += 1
        send_ms = self.vehicle_device.time_ms(send_cost)
        bus_ms = len(record) * self.config.bus_ms_per_byte
        self.sim.schedule_after(
            self.config.send_interval_ms + send_ms + bus_ms,
            lambda: self._send(vehicle),
        )

    # -- driving -----------------------------------------------------------------

    def run(self, max_events: int = 5_000_000) -> FleetResult:
        """Run the full storm to quiescence and aggregate the stats."""
        for vehicle in self.vehicles:
            self.sim.schedule_at(
                vehicle.arrival_ms, (lambda v: lambda: self._arrive(v))(vehicle)
            )
        self.sim.run(max_events=max_events)
        unfinished = [v.name for v in self.vehicles if v.done_at is None]
        if unfinished:
            raise SimulationError(
                f"fleet run ended with unfinished vehicles: {unfinished[:5]}"
            )
        stats = FleetStats(
            vehicles=len(self.vehicles),
            enrollments=sum(1 for v in self.vehicles if v.enrolled),
            sessions_established=self._sessions_established,
            rekeys=self._rekeys,
            records_sent=self._records_sent,
            duration_ms=self.sim.now,
            ca_busy_ms=self.ca_resource.busy_ms,
            ca_utilisation=self.ca_resource.utilisation(self.sim.now),
            ca_batches=self._ca_batches,
            ca_max_batch=self._ca_max_batch,
            enrollment_latency=LatencySummary.from_samples(
                self._enrollment_latencies
            ),
            establishment_latency=LatencySummary.from_samples(
                self._establishment_latencies
            ),
            vehicle_energy_mj=self._vehicle_energy_mj,
            ca_energy_mj=self._ca_energy_mj,
        )
        return FleetResult(stats=stats, vehicles=self.vehicles)


def run_fleet(config: FleetConfig | None = None) -> FleetResult:
    """Convenience one-shot: build an orchestrator and run it."""
    return FleetOrchestrator(
        config if config is not None else FleetConfig()
    ).run()
