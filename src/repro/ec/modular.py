"""Modular arithmetic over prime fields.

Implemented from scratch (extended Euclid, Tonelli–Shanks) rather than
delegating to ``pow(x, -1, p)`` so the operations are explicit, auditable and
traceable: a stand-alone modular inversion is one of the priced events in the
hardware cost model (``mod.inv``).
"""

from __future__ import annotations

from ..errors import MathError, NonResidueError, NotInvertibleError
from .. import trace


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.
    Iterative formulation to avoid Python recursion limits on large inputs.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def inverse_mod(a: int, m: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``m``.

    Raises:
        NotInvertibleError: if ``gcd(a, m) != 1`` (includes ``a == 0``).
    """
    if m <= 1:
        raise MathError(f"modulus must be > 1, got {m}")
    a %= m
    if a == 0:
        raise NotInvertibleError(f"0 has no inverse modulo {m}")
    g, x, _ = egcd(a, m)
    if g != 1:
        raise NotInvertibleError(f"{a} is not invertible modulo {m} (gcd={g})")
    trace.record("mod.inv")
    return x % m


def batch_inverse_untraced(values: list[int], m: int) -> list[int]:
    """Montgomery-trick simultaneous inversion without tracing or checks.

    Inverts ``len(values)`` elements with a *single* real inversion plus
    ``3*(len(values)-1)`` modular multiplications.  Inputs must be non-zero
    modulo ``m``; a non-invertible element surfaces as :class:`ValueError`
    from :func:`pow`.  Internal hot path — callers wanting validation,
    typed errors and cost tracing use :func:`batch_inverse`.
    """
    count = len(values)
    if count == 0:
        return []
    prefix: list[int] = []
    acc = 1
    for v in values:
        acc = acc * v % m
        prefix.append(acc)
    inv = pow(acc, -1, m)
    out = [0] * count
    for i in range(count - 1, 0, -1):
        out[i] = inv * prefix[i - 1] % m
        inv = inv * values[i] % m
    out[0] = inv % m
    return out


def batch_inverse(values, m: int) -> list[int]:
    """Simultaneous modular inversion of many elements (Montgomery's trick).

    Computes ``[v^-1 mod m for v in values]`` using one real inversion and
    three multiplications per element — the batching primitive behind
    fleet-scale Jacobian normalization.  Records a single ``mod.inv`` trace
    event regardless of batch size, which is exactly the hardware-model
    price of the trick.

    Raises:
        NotInvertibleError: if any element is not invertible modulo ``m``
            (the message identifies the first offending index).
    """
    if m <= 1:
        raise MathError(f"modulus must be > 1, got {m}")
    residues = [v % m for v in values]
    if not residues:
        return []
    for i, r in enumerate(residues):
        if r == 0:
            raise NotInvertibleError(
                f"element {i}: 0 has no inverse modulo {m}"
            )
    try:
        out = batch_inverse_untraced(residues, m)
    except ValueError:
        for i, r in enumerate(residues):
            if egcd(r, m)[0] != 1:
                raise NotInvertibleError(
                    f"element {i} ({r}) is not invertible modulo {m}"
                ) from None
        raise  # pragma: no cover - every failure has an offending element
    trace.record("mod.inv")
    return out


def legendre_symbol(a: int, p: int) -> int:
    """Legendre symbol ``(a/p)`` for an odd prime ``p``.

    Returns 1 if ``a`` is a non-zero quadratic residue mod ``p``, -1 if it is
    a non-residue and 0 if ``a ≡ 0 (mod p)``.
    """
    a %= p
    if a == 0:
        return 0
    ls = pow(a, (p - 1) // 2, p)
    return -1 if ls == p - 1 else 1


def sqrt_mod(a: int, p: int) -> int:
    """A square root of ``a`` modulo an odd prime ``p``.

    Uses the fast exponent shortcut for ``p ≡ 3 (mod 4)`` (all SEC random
    prime curves qualify) and falls back to Tonelli–Shanks otherwise.  The
    returned root ``r`` satisfies ``r*r ≡ a (mod p)``; the caller picks the
    root parity it needs (relevant for SEC 1 point decompression).

    Raises:
        NonResidueError: if ``a`` is a quadratic non-residue mod ``p``.
    """
    a %= p
    if a == 0:
        return 0
    if legendre_symbol(a, p) != 1:
        raise NonResidueError(f"{a:#x} is not a quadratic residue mod {p:#x}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks: factor p-1 = q * 2^s with q odd.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # Find a non-residue z.
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i, 0 < i < m, with t^(2^i) == 1.
        i = 0
        t2i = t
        while t2i != 1:
            t2i = (t2i * t2i) % p
            i += 1
            if i == m:
                raise NonResidueError(
                    f"Tonelli-Shanks failed for a={a:#x}, p={p:#x}"
                )
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = (b * b) % p
        t = (t * c) % p
        r = (r * b) % p
    return r


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> tuple[int, int]:
    """Chinese remainder theorem for two coprime moduli.

    Returns ``(r, m1*m2)`` with ``r ≡ r1 (mod m1)`` and ``r ≡ r2 (mod m2)``.
    """
    g, p, _ = egcd(m1, m2)
    if g != 1:
        raise MathError(f"moduli {m1} and {m2} are not coprime (gcd={g})")
    lcm = m1 * m2
    diff = (r2 - r1) % m2
    r = (r1 + m1 * ((diff * p) % m2)) % lcm
    return r, lcm


def is_probable_prime(n: int, rounds: int = 24) -> bool:
    """Deterministic-for-our-sizes Miller–Rabin primality test.

    Used by tests and parameter validation; the fixed witness schedule is
    deterministic so results are reproducible.
    """
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for sp in small_primes:
        if n == sp:
            return True
        if n % sp == 0:
            return False
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    # Fixed pseudo-random witnesses derived from n keep this deterministic.
    witnesses = [(2 + 3 * i * i + (n % (i + 5))) % (n - 3) + 2 for i in range(rounds)]
    for a in witnesses:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True
