"""SEC 1 point encoding: octet-string conversions for curve points.

Implements the three SEC 1 §2.3.3/2.3.4 forms:

* uncompressed — ``0x04 || X || Y`` (``2*mlen + 1`` bytes),
* compressed — ``0x02/0x03 || X`` (``mlen + 1`` bytes; the prefix carries
  the parity of Y),
* infinity — the single byte ``0x00``.

The paper's minimal 101-byte certificate encoding relies on compressed
points (33 bytes on secp256r1), so compression must round-trip exactly.
"""

from __future__ import annotations

from ..errors import PointDecodingError
from ..utils import bytes_to_int, int_to_bytes
from .curve import Curve
from .modular import NonResidueError, sqrt_mod
from .point import Point

UNCOMPRESSED = 0x04
COMPRESSED_EVEN = 0x02
COMPRESSED_ODD = 0x03
INFINITY = 0x00


def encode_point(point: Point, compressed: bool = True) -> bytes:
    """Encode a point as a SEC 1 octet string."""
    if point.is_infinity:
        return bytes([INFINITY])
    mlen = point.curve.field_bytes
    x_bytes = int_to_bytes(point.x, mlen)
    if compressed:
        prefix = COMPRESSED_ODD if point.y & 1 else COMPRESSED_EVEN
        return bytes([prefix]) + x_bytes
    return bytes([UNCOMPRESSED]) + x_bytes + int_to_bytes(point.y, mlen)


def decode_point(curve: Curve, data: bytes) -> Point:
    """Decode a SEC 1 octet string into a point on ``curve``.

    Raises:
        PointDecodingError: on any malformed input, wrong length, off-curve
            coordinates, or non-residue X for a compressed encoding.
    """
    if not data:
        raise PointDecodingError("empty point encoding")
    mlen = curve.field_bytes
    prefix = data[0]
    if prefix == INFINITY:
        if len(data) != 1:
            raise PointDecodingError("infinity encoding must be exactly 0x00")
        return Point.infinity(curve)
    if prefix == UNCOMPRESSED:
        if len(data) != 1 + 2 * mlen:
            raise PointDecodingError(
                f"uncompressed point must be {1 + 2 * mlen} bytes,"
                f" got {len(data)}"
            )
        x = bytes_to_int(data[1 : 1 + mlen])
        y = bytes_to_int(data[1 + mlen :])
        if not curve.contains(x, y):
            raise PointDecodingError("decoded coordinates are not on curve")
        return Point(curve, x, y)
    if prefix in (COMPRESSED_EVEN, COMPRESSED_ODD):
        if len(data) != 1 + mlen:
            raise PointDecodingError(
                f"compressed point must be {1 + mlen} bytes, got {len(data)}"
            )
        x = bytes_to_int(data[1:])
        if x >= curve.p:
            raise PointDecodingError("compressed X exceeds field modulus")
        try:
            y = sqrt_mod(curve.rhs(x), curve.p)
        except NonResidueError as exc:
            raise PointDecodingError(
                "compressed X has no matching curve point"
            ) from exc
        want_odd = prefix == COMPRESSED_ODD
        if (y & 1) != want_odd:
            y = curve.p - y
        return Point(curve, x, y)
    raise PointDecodingError(f"unknown point encoding prefix {prefix:#04x}")


def point_size(curve: Curve, compressed: bool = True) -> int:
    """Wire size in bytes of a non-infinity point encoding."""
    return 1 + curve.field_bytes * (1 if compressed else 2)
