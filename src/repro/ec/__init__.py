"""Elliptic-curve arithmetic substrate (from scratch).

Public surface:

* :class:`Curve` and the SEC 2 named curves (``SECP256R1`` etc.),
* :class:`Point` with affine arithmetic and operator overloads,
* scalar multiplication strategies (:func:`mul_base`, :func:`mul_point`,
  :func:`mul_double`, :func:`mul_ladder`) plus the batch-optimized
  :func:`mul_base_batch`,
* SEC 1 point encoding (:func:`encode_point`, :func:`decode_point`),
* modular helpers (:func:`inverse_mod`, :func:`sqrt_mod`,
  :func:`batch_inverse`),
* batched Jacobian→affine conversion (:func:`normalize_batch`).

"From scratch" describes the reference implementation, which stays the
default: the scalar-multiplication wrappers additionally dispatch their
non-degenerate cores through the pluggable backend seam
(:mod:`repro.backend`), so ``use_backend("accelerated")`` swaps in
OpenSSL point math with bit-identical points and trace events.
"""

from .curve import (
    BRAINPOOLP256R1,
    BRAINPOOLP384R1,
    CURVES,
    CURVE_IDS,
    Curve,
    SECP192R1,
    SECP224R1,
    SECP256K1,
    SECP256R1,
    SECP384R1,
    curve_by_id,
    curve_id,
    get_curve,
)
from .encoding import decode_point, encode_point, point_size
from .modular import (
    batch_inverse,
    egcd,
    inverse_mod,
    is_probable_prime,
    legendre_symbol,
    sqrt_mod,
)
from .point import Point, normalize_batch
from .scalarmult import (
    clear_point_tables,
    mul_base,
    mul_base_batch,
    mul_double,
    mul_double_batch,
    mul_ladder,
    mul_point,
    precompute_point,
)

__all__ = [
    "BRAINPOOLP256R1",
    "BRAINPOOLP384R1",
    "CURVES",
    "CURVE_IDS",
    "Curve",
    "Point",
    "SECP192R1",
    "SECP224R1",
    "SECP256K1",
    "SECP256R1",
    "SECP384R1",
    "batch_inverse",
    "clear_point_tables",
    "curve_by_id",
    "curve_id",
    "decode_point",
    "egcd",
    "encode_point",
    "get_curve",
    "inverse_mod",
    "is_probable_prime",
    "legendre_symbol",
    "mul_base",
    "mul_base_batch",
    "mul_double",
    "mul_double_batch",
    "mul_ladder",
    "mul_point",
    "normalize_batch",
    "point_size",
    "precompute_point",
    "sqrt_mod",
]
