"""Short-Weierstrass elliptic curve domain parameters.

Provides the SEC 2 named curves used by the paper's evaluation (secp256r1,
a.k.a. NIST P-256, is the one every experiment runs on) plus the neighbouring
SEC curves so the library is usable beyond the paper's configuration.

A curve is ``y^2 = x^3 + a*x + b  over GF(p)`` with base point ``G`` of prime
order ``n`` and cofactor ``h``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CurveError
from .modular import is_probable_prime


@dataclass(frozen=True)
class Curve:
    """Domain parameters of a short-Weierstrass prime curve.

    Attributes:
        name: SEC 2 curve name (e.g. ``"secp256r1"``).
        p: field prime.
        a: curve coefficient *a*.
        b: curve coefficient *b*.
        gx: base point x coordinate.
        gy: base point y coordinate.
        n: (prime) order of the base point.
        h: cofactor.
    """

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int
    h: int = 1

    @property
    def field_bytes(self) -> int:
        """Octet length of one field element (SEC 1 ``mlen``)."""
        return (self.p.bit_length() + 7) // 8

    @property
    def scalar_bytes(self) -> int:
        """Octet length of one scalar modulo ``n``."""
        return (self.n.bit_length() + 7) // 8

    @property
    def bits(self) -> int:
        """Nominal security-relevant field size in bits."""
        return self.p.bit_length()

    def contains(self, x: int, y: int) -> bool:
        """Check whether affine coordinates satisfy the curve equation."""
        if not (0 <= x < self.p and 0 <= y < self.p):
            return False
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def rhs(self, x: int) -> int:
        """Evaluate ``x^3 + a*x + b mod p`` (the curve equation RHS)."""
        return (x * x * x + self.a * x + self.b) % self.p

    @property
    def generator(self):
        """The base point ``G`` as an :class:`~repro.ec.point.Point`."""
        from .point import Point

        return Point(self, self.gx, self.gy)

    # Alias matching common library naming.
    G = generator

    def validate(self) -> None:
        """Sanity-check the domain parameters.

        Verifies the discriminant is non-zero, the base point is on the
        curve, and ``p``/``n`` are (probable) primes.  Raises
        :class:`CurveError` on any violation.  This mirrors the parameter
        validation step SEC 1 prescribes before using untrusted parameters.
        """
        disc = (4 * self.a * self.a * self.a + 27 * self.b * self.b) % self.p
        if disc == 0:
            raise CurveError(f"{self.name}: singular curve (discriminant 0)")
        if not self.contains(self.gx, self.gy):
            raise CurveError(f"{self.name}: base point not on curve")
        if not is_probable_prime(self.p):
            raise CurveError(f"{self.name}: field modulus is not prime")
        if not is_probable_prime(self.n):
            raise CurveError(f"{self.name}: group order is not prime")
        if self.h < 1:
            raise CurveError(f"{self.name}: invalid cofactor {self.h}")

    def __repr__(self) -> str:
        return f"Curve({self.name}, {self.bits}-bit)"


SECP192R1 = Curve(
    name="secp192r1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFC,
    b=0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1,
    gx=0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012,
    gy=0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831,
    h=1,
)

SECP224R1 = Curve(
    name="secp224r1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF000000000000000000000001,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFFFFFFFFFE,
    b=0xB4050A850C04B3ABF54132565044B0B7D7BFD8BA270B39432355FFB4,
    gx=0xB70E0CBD6BB4BF7F321390B94A03C1D356C21122343280D6115C1D21,
    gy=0xBD376388B5F723FB4C22DFE6CD4375A05A07476444D5819985007E34,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFF16A2E0B8F03E13DD29455C5C2A3D,
    h=1,
)

SECP256R1 = Curve(
    name="secp256r1",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    h=1,
)

SECP256K1 = Curve(
    name="secp256k1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F,
    a=0x0,
    b=0x7,
    gx=0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
    gy=0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
    h=1,
)

SECP384R1 = Curve(
    name="secp384r1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFF0000000000000000FFFFFFFF,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFF0000000000000000FFFFFFFC,
    b=0xB3312FA7E23EE7E4988E056BE3F82D19181D9C6EFE8141120314088F5013875AC656398D8A2ED19D2A85C8EDD3EC2AEF,
    gx=0xAA87CA22BE8B05378EB1C71EF320AD746E1D3B628BA79B9859F741E082542A385502F25DBF55296C3A545E3872760AB7,
    gy=0x3617DE4A96262C6F5D9E98BF9292DC29F8F41DBD289A147CE9DA3113B5F0B8C00A60B1CE1D7E819D7A431D7C90EA0E5F,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFC7634D81F4372DDF581A0DB248B0A77AECEC196ACCC52973,
    h=1,
)

# Brainpool curves (RFC 5639): the BSI-recommended parameters common in
# European automotive deployments - a natural alternative configuration
# for the paper's BMS/EVCC scenario.
BRAINPOOLP256R1 = Curve(
    name="brainpoolP256r1",
    p=0xA9FB57DBA1EEA9BC3E660A909D838D726E3BF623D52620282013481D1F6E5377,
    a=0x7D5A0975FC2C3057EEF67530417AFFE7FB8055C126DC5C6CE94A4B44F330B5D9,
    b=0x26DC5C6CE94A4B44F330B5D9BBD77CBF958416295CF7E1CE6BCCDC18FF8C07B6,
    gx=0x8BD2AEB9CB7E57CB2C4B482FFC81B7AFB9DE27E1E3BD23C23A4453BD9ACE3262,
    gy=0x547EF835C3DAC4FD97F8461A14611DC9C27745132DED8E545C1D54C72F046997,
    n=0xA9FB57DBA1EEA9BC3E660A909D838D718C397AA3B561A6F7901E0E82974856A7,
    h=1,
)

BRAINPOOLP384R1 = Curve(
    name="brainpoolP384r1",
    p=0x8CB91E82A3386D280F5D6F7E50E641DF152F7109ED5456B412B1DA197FB71123ACD3A729901D1A71874700133107EC53,
    a=0x7BC382C63D8C150C3C72080ACE05AFA0C2BEA28E4FB22787139165EFBA91F90F8AA5814A503AD4EB04A8C7DD22CE2826,
    b=0x04A8C7DD22CE28268B39B55416F0447C2FB77DE107DCD2A62E880EA53EEB62D57CB4390295DBC9943AB78696FA504C11,
    gx=0x1D1C64F068CF45FFA2A63A81B7C13F6B8847A3E77EF14FE3DB7FCAFE0CBD10E8E826E03436D646AAEF87B2E247D4AF1E,
    gy=0x8ABE1D7520F9C2A45CB1EB8E95CFD55262B70B29FEEC5864E19C054FF99129280E4646217791811142820341263C5315,
    n=0x8CB91E82A3386D280F5D6F7E50E641DF152F7109ED5456B31F166E6CAC0425A7CF3AB6AF6B7FC3103B883202E9046565,
    h=1,
)

#: Registry of named curves (SEC 2 + RFC 5639 Brainpool).
CURVES: dict[str, Curve] = {
    c.name: c
    for c in (
        SECP192R1,
        SECP224R1,
        SECP256R1,
        SECP256K1,
        SECP384R1,
        BRAINPOOLP256R1,
        BRAINPOOLP384R1,
    )
}

#: One-byte curve identifiers used in our compact certificate encoding.
CURVE_IDS: dict[str, int] = {
    "secp192r1": 1,
    "secp224r1": 2,
    "secp256r1": 3,
    "secp256k1": 4,
    "secp384r1": 5,
    "brainpoolP256r1": 6,
    "brainpoolP384r1": 7,
}

_CURVE_BY_ID = {v: k for k, v in CURVE_IDS.items()}


def get_curve(name: str) -> Curve:
    """Look up a named curve, raising :class:`CurveError` if unknown."""
    try:
        return CURVES[name]
    except KeyError:
        raise CurveError(
            f"unknown curve {name!r}; known: {sorted(CURVES)}"
        ) from None


def curve_by_id(curve_id: int) -> Curve:
    """Look up a curve by its compact one-byte identifier."""
    try:
        return CURVES[_CURVE_BY_ID[curve_id]]
    except KeyError:
        raise CurveError(f"unknown curve id {curve_id}") from None


def curve_id(curve: Curve) -> int:
    """Compact one-byte identifier for a named curve."""
    try:
        return CURVE_IDS[curve.name]
    except KeyError:
        raise CurveError(f"curve {curve.name!r} has no registered id") from None
