"""Elliptic-curve points: affine API plus internal Jacobian arithmetic.

The public :class:`Point` type is affine and immutable, matching how points
appear on the wire (SEC 1 octet strings) and in certificates.  All scalar
multiplication strategies (:mod:`repro.ec.scalarmult`) run on Jacobian
projective coordinates internally to avoid per-step modular inversions —
exactly the trick micro-ecc (the paper's C library) uses.

Tracing convention: the *public* ``+`` operator records one ``ec.add`` event
(a stand-alone point addition, e.g. the ``+ Q_CA`` step of ECQV public-key
reconstruction).  The internal Jacobian helpers record nothing; scalar
multiplication records a single high-level event instead, because that is
the granularity at which the hardware model prices operations.
"""

from __future__ import annotations

from .. import trace
from ..errors import CurveError
from .curve import Curve
from .modular import batch_inverse_untraced


class Point:
    """An affine point on a short-Weierstrass curve (or the identity).

    Instances are immutable; arithmetic returns new points.  The identity
    (point at infinity) is represented with ``x is None and y is None`` and
    can be obtained via :meth:`infinity`.
    """

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: Curve, x: int | None, y: int | None) -> None:
        object.__setattr__(self, "curve", curve)
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)
        if (x is None) != (y is None):
            raise CurveError("both coordinates must be None for infinity")
        if x is not None and not curve.contains(x, y):
            raise CurveError(
                f"point ({x:#x}, {y:#x}) is not on curve {curve.name}"
            )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point instances are immutable")

    @classmethod
    def infinity(cls, curve: Curve) -> "Point":
        """The identity element of the curve group."""
        return cls(curve, None, None)

    @property
    def is_infinity(self) -> bool:
        """True if this is the point at infinity."""
        return self.x is None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return (
            self.curve.name == other.curve.name
            and self.x == other.x
            and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.curve.name, self.x, self.y))

    def __neg__(self) -> "Point":
        if self.is_infinity:
            return self
        return Point(self.curve, self.x, (-self.y) % self.curve.p)

    def __add__(self, other: "Point") -> "Point":
        """Affine point addition (records one ``ec.add`` trace event)."""
        if not isinstance(other, Point):
            return NotImplemented
        if self.curve.name != other.curve.name:
            raise CurveError(
                f"cannot add points on {self.curve.name} and {other.curve.name}"
            )
        trace.record("ec.add")
        return self._add_raw(other)

    def _add_raw(self, other: "Point") -> "Point":
        """Affine addition without tracing (internal use)."""
        p = self.curve.p
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        if self.x == other.x:
            if (self.y + other.y) % p == 0:
                return Point.infinity(self.curve)
            # Doubling.
            lam = (3 * self.x * self.x + self.curve.a) * inverse_mod_untraced(
                2 * self.y, p
            ) % p
        else:
            lam = (other.y - self.y) * inverse_mod_untraced(
                (other.x - self.x) % p, p
            ) % p
        x3 = (lam * lam - self.x - other.x) % p
        y3 = (lam * (self.x - x3) - self.y) % p
        return Point(self.curve, x3, y3)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def double(self) -> "Point":
        """Affine point doubling (records one ``ec.add`` trace event)."""
        return self + self

    def __mul__(self, scalar: int) -> "Point":
        """Scalar multiplication (delegates to :mod:`scalarmult`)."""
        from .scalarmult import mul_point

        return mul_point(scalar, self)

    __rmul__ = __mul__

    def __repr__(self) -> str:
        if self.is_infinity:
            return f"Point({self.curve.name}, infinity)"
        return f"Point({self.curve.name}, x={self.x:#x}, y={self.y:#x})"


def inverse_mod_untraced(a: int, m: int) -> int:
    """Modular inverse without recording a ``mod.inv`` trace event.

    Affine formulas used inside higher-level operations fold their inversion
    cost into the high-level event, so they must not double-count.
    """
    return pow(a, -1, m)


# ---------------------------------------------------------------------------
# Jacobian projective coordinates.
#
# A Jacobian triple (X, Y, Z) represents the affine point (X/Z^2, Y/Z^3);
# Z == 0 encodes the point at infinity.  These helpers are free functions on
# plain tuples for speed; they intentionally do not trace.
# ---------------------------------------------------------------------------

Jacobian = tuple[int, int, int]

JAC_INFINITY: Jacobian = (1, 1, 0)


def to_jacobian(point: Point) -> Jacobian:
    """Lift an affine point to Jacobian coordinates."""
    if point.is_infinity:
        return JAC_INFINITY
    return (point.x, point.y, 1)


def from_jacobian(curve: Curve, jac: Jacobian) -> Point:
    """Normalise a Jacobian triple back to an affine :class:`Point`."""
    x, y, z = jac
    if z == 0:
        return Point.infinity(curve)
    p = curve.p
    z_inv = pow(z, -1, p)
    z_inv2 = (z_inv * z_inv) % p
    return Point(curve, (x * z_inv2) % p, (y * z_inv2 * z_inv) % p)


def normalize_batch(curve: Curve, jacs: list[Jacobian]) -> list[Point]:
    """Normalise many Jacobian triples with one shared inversion.

    Montgomery's trick turns the per-point ``Z`` inversion of
    :func:`from_jacobian` into a single inversion plus three modular
    multiplications per point — the asymptotic win every batched scalar
    multiplication (CA issuance bursts, fleet session storms) rides on.
    Points at infinity pass through unchanged.  Like :func:`from_jacobian`
    this does not trace: normalization cost is folded into the high-level
    ``ec.mul_*`` events.
    """
    p = curve.p
    zs = [z for _, _, z in jacs if z != 0]
    if not zs:
        return [Point.infinity(curve) for _ in jacs]
    z_invs = iter(batch_inverse_untraced(zs, p))
    points: list[Point] = []
    for x, y, z in jacs:
        if z == 0:
            points.append(Point.infinity(curve))
            continue
        z_inv = next(z_invs)
        z_inv2 = (z_inv * z_inv) % p
        points.append(Point(curve, (x * z_inv2) % p, (y * z_inv2 * z_inv) % p))
    return points


def jac_double(curve: Curve, jac: Jacobian) -> Jacobian:
    """Jacobian point doubling (general *a*; 2007 Bernstein–Lange dbl)."""
    x1, y1, z1 = jac
    if z1 == 0 or y1 == 0:
        return JAC_INFINITY
    p = curve.p
    a = curve.a
    xx = (x1 * x1) % p
    yy = (y1 * y1) % p
    yyyy = (yy * yy) % p
    zz = (z1 * z1) % p
    s = (2 * ((x1 + yy) * (x1 + yy) - xx - yyyy)) % p
    m = (3 * xx + a * zz % p * zz) % p
    t = (m * m - 2 * s) % p
    x3 = t
    y3 = (m * (s - t) - 8 * yyyy) % p
    z3 = ((y1 + z1) * (y1 + z1) - yy - zz) % p
    return (x3, y3, z3)


def jac_add(curve: Curve, j1: Jacobian, j2: Jacobian) -> Jacobian:
    """General Jacobian point addition (handles all degenerate cases)."""
    x1, y1, z1 = j1
    x2, y2, z2 = j2
    if z1 == 0:
        return j2
    if z2 == 0:
        return j1
    p = curve.p
    z1z1 = (z1 * z1) % p
    z2z2 = (z2 * z2) % p
    u1 = (x1 * z2z2) % p
    u2 = (x2 * z1z1) % p
    s1 = (y1 * z2 * z2z2) % p
    s2 = (y2 * z1 * z1z1) % p
    if u1 == u2:
        if s1 != s2:
            return JAC_INFINITY
        return jac_double(curve, j1)
    h = (u2 - u1) % p
    i = (4 * h * h) % p
    j = (h * i) % p
    r = (2 * (s2 - s1)) % p
    v = (u1 * i) % p
    x3 = (r * r - j - 2 * v) % p
    y3 = (r * (v - x3) - 2 * s1 * j) % p
    z3 = (((z1 + z2) * (z1 + z2) - z1z1 - z2z2) * h) % p
    return (x3, y3, z3)


def jac_add_mixed(curve: Curve, j1: Jacobian, point: Point) -> Jacobian:
    """Mixed addition of a Jacobian triple and an affine point (Z2 == 1).

    Saves several field multiplications over the general formula; this is
    the inner-loop addition of every scalar-multiplication strategy.
    """
    if point.is_infinity:
        return j1
    return jac_add_affine(curve, j1, point.x, point.y)


def jac_add_affine(curve: Curve, j1: Jacobian, x2: int, y2: int) -> Jacobian:
    """Mixed addition against raw affine coordinates ``(x2, y2)``.

    The wNAF loops index precomputed affine tables and add either an entry
    or its negation; taking bare coordinates lets a negative digit pass
    ``(x, p - y)`` without constructing (and re-validating) a
    :class:`Point`.

    Because callers hand in *raw* coordinates, both are reduced mod ``p``
    up front.  Skipping that reduction silently corrupted two paths: the
    ``z1 == 0`` early return leaked the unreduced values into the output
    triple, and the ``x1 == u2`` doubling/inverse degeneracy tests
    compared reduced residues against unreduced ones — e.g. the
    ``(x, p - y)`` negation of a ``y == 0`` table entry arrives as
    ``y2 == p`` and must behave exactly like ``y2 == 0``.
    """
    p = curve.p
    x2 %= p
    y2 %= p
    x1, y1, z1 = j1
    if z1 == 0:
        return (x2, y2, 1)
    z1z1 = (z1 * z1) % p
    u2 = (x2 * z1z1) % p
    s2 = (y2 * z1 * z1z1) % p
    if x1 == u2:
        if y1 != s2:
            return JAC_INFINITY
        return jac_double(curve, j1)
    h = (u2 - x1) % p
    hh = (h * h) % p
    i = (4 * hh) % p
    j = (h * i) % p
    r = (2 * (s2 - y1)) % p
    v = (x1 * i) % p
    x3 = (r * r - j - 2 * v) % p
    y3 = (r * (v - x3) - 2 * y1 * j) % p
    z3 = ((z1 + h) * (z1 + h) - z1z1 - hh) % p
    return (x3, y3, z3)


def jac_negate(curve: Curve, jac: Jacobian) -> Jacobian:
    """Negate a Jacobian triple."""
    x, y, z = jac
    return (x, (-y) % curve.p, z)
