"""Scalar multiplication strategies.

Four strategies are provided, mirroring the menu an embedded crypto library
offers:

* :func:`mul_point` — width-4 wNAF, the general-purpose workhorse
  (traces ``ec.mul_point``).
* :func:`mul_base` — fixed-base comb multiplication of the curve base point
  with a cached per-curve precomputation table (traces ``ec.mul_base``);
  :func:`mul_base_batch` amortizes the final Jacobian normalization over a
  whole batch of scalars via Montgomery-trick batch inversion.
* :func:`mul_double` — interleaved-wNAF simultaneous multiplication
  ``u*P + v*Q`` used by ECDSA verification and by the fused
  reconstruct-and-derive step of the SCIANC protocol (traces
  ``ec.mul_double``); :func:`mul_double_batch` amortizes the final
  normalization across many terms (batch ECDSA verification rides on it).
* :func:`mul_ladder` — a uniform double-and-add-always ladder approximating
  the constant-time behaviour of hardened embedded code
  (traces ``ec.mul_point``; same price class).

Hot points can share precomputation: :func:`precompute_point` registers a
point's odd-multiples wNAF table in a cache keyed on the *full* curve
parameters plus the affine coordinates, so repeated multiplications of a
long-lived public key (a fleet gateway, a root CA) skip the per-call table
build.  Curve generators are cached automatically on first use; arbitrary
(ephemeral) points are never cached implicitly, keeping the cache bounded
by the set of explicitly registered keys.

All strategies agree on results (property-tested) and differ only in
operation schedule, which is what the hardware model prices.

Since the EC extension of the backend seam, the public functions here are
*dispatch wrappers*: they own scalar reduction, degenerate-case collapsing
and the ``ec.mul_*`` trace events, then hand the non-degenerate core to
:func:`repro.backend.get_backend` (``ec_mul_base`` / ``ec_mul`` /
``ec_mul_double`` and their batch forms).  The default backend methods
call straight back into the ``_mul_*`` reference cores below, so the
``reference`` backend runs the exact seed code path; ``accelerated``
substitutes OpenSSL point math with bit-identical results (affine
coordinates of a group element are unique) and — because no backend may
record trace events — bit-identical accounting.  :func:`mul_ladder` stays
backend-independent on purpose: it is the uniform-schedule oracle the
tests cross-check every backend against.
"""

from __future__ import annotations

from .. import trace
from ..backend import get_backend
from ..errors import CurveError
from .curve import Curve
from .point import (
    JAC_INFINITY,
    Jacobian,
    Point,
    from_jacobian,
    jac_add,
    jac_add_affine,
    jac_add_mixed,
    jac_double,
    normalize_batch,
    to_jacobian,
)

_WNAF_WIDTH = 4
#: Number of comb teeth for fixed-base multiplication: each tooth reads one
#: bit of the scalar, so a window touches ``_COMB_TEETH`` bits spaced
#: ``columns`` apart and the main loop runs ``columns ≈ bits/teeth`` times.
_COMB_TEETH = 4

# Per-curve cache of base-point comb tables.  Keyed on the full (frozen,
# hashable) Curve value — NOT on curve.name — so two distinct Curve objects
# that happen to share a name can never silently share precomputation.
# Value: (columns, [T_1 .. T_{2^teeth - 1}]) with
# T_pattern = sum_{i: bit i of pattern} 2^(i*columns) * G.
_BASE_TABLES: dict[Curve, tuple[int, list[Point]]] = {}

# Shared wNAF odd-multiples tables [P, 3P, 5P, ...] for registered hot
# points, keyed on (full Curve value, x, y) — the same aliasing discipline
# as _BASE_TABLES.  Populated only by precompute_point() and, lazily, for
# curve generators; never for arbitrary call-site points.  Bounded: once
# _POINT_TABLE_LIMIT entries exist, the oldest registration is evicted
# (FIFO via dict insertion order), so a long-lived process that builds
# many fleets (a parameter study, the test suite) cannot grow this
# without bound — an evicted point just pays the per-call table build
# again until re-registered.
_POINT_TABLES: dict[tuple[Curve, int, int], list[Point]] = {}
_POINT_TABLE_LIMIT = 256


def _wnaf(k: int, width: int) -> list[int]:
    """Compute the width-``w`` non-adjacent form of ``k`` (LSB first)."""
    digits: list[int] = []
    window = 1 << width
    half = window >> 1
    while k > 0:
        if k & 1:
            d = k % window
            if d >= half:
                d -= window
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


def _odd_multiples(point: Point) -> list[Point]:
    """Affine odd multiples ``[P, 3P, 5P, ..., (2^(w-1)-1)P]`` of a point.

    Accumulated in Jacobian coordinates and normalized together in one
    batch inversion, so building a table costs a single real inversion.
    """
    curve = point.curve
    jacs: list[Jacobian] = [to_jacobian(point)]
    twice = jac_double(curve, jacs[0])
    for _ in range((1 << (_WNAF_WIDTH - 1)) // 2 - 1):
        jacs.append(jac_add(curve, jacs[-1], twice))
    return normalize_batch(curve, jacs)


def _store_point_table(
    key: tuple[Curve, int, int], table: list[Point]
) -> None:
    """Insert a table, evicting the oldest entries past the size bound."""
    while len(_POINT_TABLES) >= _POINT_TABLE_LIMIT:
        _POINT_TABLES.pop(next(iter(_POINT_TABLES)))
    _POINT_TABLES[key] = table


def precompute_point(point: Point) -> None:
    """Register a hot point's wNAF table in the shared cache.

    Intended for long-lived public keys multiplied many times — a
    gateway's key verified by a whole fleet, a root CA's reconstruction
    point validated on every cross-shard handshake.  Subsequent
    :func:`mul_point` / :func:`mul_double` calls on the same point (same
    full curve parameters, same coordinates) reuse the table instead of
    rebuilding it.  Results are bit-identical either way; only host time
    changes, so cost traces and simulation digests are unaffected.
    """
    if point.is_infinity:
        raise CurveError("cannot precompute a table for the point at infinity")
    key = (point.curve, point.x, point.y)
    if key not in _POINT_TABLES:
        _store_point_table(key, _odd_multiples(point))


def clear_point_tables() -> None:
    """Drop every shared wNAF table (test isolation / memory reclaim)."""
    _POINT_TABLES.clear()


def _wnaf_table(point: Point) -> list[Point]:
    """The odd-multiples table for a point: cached if registered, else fresh.

    Curve generators are cached automatically (bounded: one entry per
    distinct curve value); any other unregistered point gets a throwaway
    table so ephemeral points can never grow the cache.
    """
    curve = point.curve
    key = (curve, point.x, point.y)
    cached = _POINT_TABLES.get(key)
    if cached is not None:
        return cached
    table = _odd_multiples(point)
    if point.x == curve.gx and point.y == curve.gy:
        _store_point_table(key, table)
    return table


def _wnaf_accumulate(
    curve: Curve, acc: Jacobian, digit: int, table: list[Point]
) -> Jacobian:
    """Add ``digit``'s odd multiple (or its negation) from an affine table."""
    if digit > 0:
        entry = table[(digit - 1) // 2]
        return jac_add_affine(curve, acc, entry.x, entry.y)
    entry = table[(-digit - 1) // 2]
    return jac_add_affine(curve, acc, entry.x, curve.p - entry.y)


def mul_point(scalar: int, point: Point) -> Point:
    """Multiply an arbitrary point by a scalar using width-4 wNAF."""
    curve = point.curve
    k = scalar % curve.n
    if k == 0 or point.is_infinity:
        return Point.infinity(curve)
    trace.record("ec.mul_point")
    return get_backend().ec_mul(curve, k, point)


def _mul_wnaf_untraced(k: int, point: Point) -> Point:
    curve = point.curve
    table = _wnaf_table(point)
    digits = _wnaf(k, _WNAF_WIDTH)
    acc: Jacobian = JAC_INFINITY
    for d in reversed(digits):
        acc = jac_double(curve, acc)
        if d:
            acc = _wnaf_accumulate(curve, acc, d, table)
    return from_jacobian(curve, acc)


def _base_table(curve: Curve) -> tuple[int, list[Point]]:
    """Cached comb precomputation for the base point of ``curve``.

    Returns ``(columns, table)`` where ``table[pattern - 1]`` holds the
    affine sum of ``2^(i*columns) * G`` over the set bits ``i`` of
    ``pattern``.  The 2^teeth - 1 combinations are accumulated in Jacobian
    coordinates and normalized together in one batch inversion.
    """
    cached = _BASE_TABLES.get(curve)
    if cached is not None:
        return cached
    columns = -(-curve.n.bit_length() // _COMB_TEETH)  # ceil division
    # Spine: G, 2^columns * G, 2^(2*columns) * G, ... (one per tooth).
    spine: list[Jacobian] = [to_jacobian(curve.generator)]
    for _ in range(_COMB_TEETH - 1):
        jac = spine[-1]
        for _ in range(columns):
            jac = jac_double(curve, jac)
        spine.append(jac)
    combos: list[Jacobian] = []
    for pattern in range(1, 1 << _COMB_TEETH):
        acc: Jacobian = JAC_INFINITY
        for tooth in range(_COMB_TEETH):
            if (pattern >> tooth) & 1:
                acc = jac_add(curve, acc, spine[tooth])
        combos.append(acc)
    table = (columns, normalize_batch(curve, combos))
    _BASE_TABLES[curve] = table
    return table


def _mul_base_jac(k: int, curve: Curve) -> Jacobian:
    """Comb multiplication of the base point; result left in Jacobian.

    The caller normalizes — singly (:func:`mul_base`) or batched across
    many scalars (:func:`mul_base_batch`).  Requires ``1 <= k < n``.
    """
    columns, table = _base_table(curve)
    acc: Jacobian = JAC_INFINITY
    for col in range(columns - 1, -1, -1):
        acc = jac_double(curve, acc)
        pattern = 0
        for tooth in range(_COMB_TEETH):
            if (k >> (tooth * columns + col)) & 1:
                pattern |= 1 << tooth
        if pattern:
            acc = jac_add_mixed(curve, acc, table[pattern - 1])
    return acc


def mul_base(scalar: int, curve: Curve) -> Point:
    """Multiply the curve base point by a scalar (fixed-base comb, cached).

    Embedded libraries special-case base-point multiplication because the
    window table can live in flash; we model the same asymmetry by tracing
    a distinct ``ec.mul_base`` event.  The comb schedule needs only
    ``bits/teeth`` doublings per multiplication (vs. ``bits`` for a
    sliding window), which is what makes CA issuance bursts cheap.
    """
    k = scalar % curve.n
    if k == 0:
        return Point.infinity(curve)
    trace.record("ec.mul_base")
    return get_backend().ec_mul_base(curve, k)


def mul_base_batch(scalars, curve: Curve) -> list[Point]:
    """Base-point multiplication of many scalars with shared normalization.

    Computes ``[k*G for k in scalars]`` leaving every result in Jacobian
    coordinates, then converts the whole batch to affine with a single
    Montgomery-trick inversion (:func:`~repro.ec.point.normalize_batch`).
    Records one ``ec.mul_base`` event per non-zero scalar, exactly like
    the scalar-at-a-time path, so protocol cost traces are unchanged.
    """
    ks: list[int] = []
    for scalar in scalars:
        k = scalar % curve.n
        if k:
            trace.record("ec.mul_base")
        ks.append(k)
    return get_backend().ec_mul_base_batch(curve, ks)


def _mul_double_jac(
    u: int, p_point: Point, v: int, q_point: Point
) -> Jacobian:
    """Shared-double interleaved wNAF core of ``u*P + v*Q`` (Jacobian out).

    Both scalars walk their width-4 wNAF digits over one doubling chain,
    drawing odd multiples from the per-point tables — so a registered hot
    point (:func:`precompute_point`), or the automatically cached curve
    generator, contributes zero per-call precomputation.  Requires at
    least one scalar non-zero after reduction.
    """
    curve = p_point.curve
    table_p = _wnaf_table(p_point) if u and not p_point.is_infinity else None
    table_q = _wnaf_table(q_point) if v and not q_point.is_infinity else None
    digits_u = _wnaf(u, _WNAF_WIDTH) if table_p is not None else []
    digits_v = _wnaf(v, _WNAF_WIDTH) if table_q is not None else []
    acc: Jacobian = JAC_INFINITY
    for i in range(max(len(digits_u), len(digits_v)) - 1, -1, -1):
        acc = jac_double(curve, acc)
        if i < len(digits_u) and digits_u[i]:
            acc = _wnaf_accumulate(curve, acc, digits_u[i], table_p)
        if i < len(digits_v) and digits_v[i]:
            acc = _wnaf_accumulate(curve, acc, digits_v[i], table_q)
    return acc


def mul_double(u: int, p_point: Point, v: int, q_point: Point) -> Point:
    """Compute ``u*P + v*Q`` with interleaved wNAF on one doubling chain.

    Costs roughly 1.25 single multiplications instead of 2, which is why
    ECDSA verification (``u1*G + u2*Q``) and SCIANC's fused
    reconstruct-and-derive are cheaper than two independent multiplies.
    """
    if p_point.curve.name != q_point.curve.name:
        raise CurveError("mul_double requires points on the same curve")
    curve = p_point.curve
    u %= curve.n
    v %= curve.n
    if (u == 0 or p_point.is_infinity) and (v == 0 or q_point.is_infinity):
        return Point.infinity(curve)
    trace.record("ec.mul_double")
    return get_backend().ec_mul_double(curve, u, p_point, v, q_point)


def mul_double_batch(terms, curve: Curve) -> list[Point]:
    """Many ``u*P + v*Q`` computations with one shared normalization.

    Args:
        terms: iterable of ``(u, p_point, v, q_point)`` tuples.
        curve: common domain parameters (every point must live on it).

    Evaluates each term in Jacobian coordinates and converts the whole
    batch to affine through a single Montgomery-trick inversion — the
    batched counterpart of :func:`mul_double`, and the EC substrate of
    batch ECDSA verification.  Records one ``ec.mul_double`` event per
    non-degenerate term, exactly like the scalar-at-a-time path, so cost
    traces are unchanged.
    """
    reduced: list[tuple[int, Point, int, Point] | None] = []
    for u, p_point, v, q_point in terms:
        # Full-value comparison, not name: a point on a curve merely
        # sharing a name must not be reduced/normalized with this
        # curve's (n, p) — the aliasing hazard every cache here guards
        # against.
        if p_point.curve != curve or q_point.curve != curve:
            raise CurveError("mul_double_batch requires points on one curve")
        u %= curve.n
        v %= curve.n
        if (u == 0 or p_point.is_infinity) and (v == 0 or q_point.is_infinity):
            reduced.append(None)
            continue
        trace.record("ec.mul_double")
        reduced.append((u, p_point, v, q_point))
    return get_backend().ec_mul_double_batch(curve, reduced)


def mul_ladder(scalar: int, point: Point) -> Point:
    """Uniform double-and-add-always scalar multiplication.

    Executes an addition on every bit regardless of its value, mimicking the
    regular operation schedule of side-channel-hardened embedded code.  Used
    by tests as an independent oracle for the faster strategies.
    """
    curve = point.curve
    k = scalar % curve.n
    if k == 0 or point.is_infinity:
        return Point.infinity(curve)
    trace.record("ec.mul_point")
    r0: Jacobian = JAC_INFINITY
    r1: Jacobian = to_jacobian(point)
    for i in range(k.bit_length() - 1, -1, -1):
        if (k >> i) & 1:
            r0 = jac_add(curve, r0, r1)
            r1 = jac_double(curve, r1)
        else:
            r1 = jac_add(curve, r0, r1)
            r0 = jac_double(curve, r0)
    return from_jacobian(curve, r0)
