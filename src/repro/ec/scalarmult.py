"""Scalar multiplication strategies.

Four strategies are provided, mirroring the menu an embedded crypto library
offers:

* :func:`mul_point` — width-4 wNAF, the general-purpose workhorse
  (traces ``ec.mul_point``).
* :func:`mul_base` — fixed-base comb multiplication of the curve base point
  with a cached per-curve precomputation table (traces ``ec.mul_base``);
  :func:`mul_base_batch` amortizes the final Jacobian normalization over a
  whole batch of scalars via Montgomery-trick batch inversion.
* :func:`mul_double` — Strauss–Shamir simultaneous multiplication
  ``u*P + v*Q`` used by ECDSA verification and by the fused
  reconstruct-and-derive step of the SCIANC protocol
  (traces ``ec.mul_double``).
* :func:`mul_ladder` — a uniform double-and-add-always ladder approximating
  the constant-time behaviour of hardened embedded code
  (traces ``ec.mul_point``; same price class).

All strategies agree on results (property-tested) and differ only in
operation schedule, which is what the hardware model prices.
"""

from __future__ import annotations

from .. import trace
from ..errors import CurveError
from .curve import Curve
from .point import (
    JAC_INFINITY,
    Jacobian,
    Point,
    from_jacobian,
    jac_add,
    jac_add_mixed,
    jac_double,
    normalize_batch,
    to_jacobian,
)

_WNAF_WIDTH = 4
#: Number of comb teeth for fixed-base multiplication: each tooth reads one
#: bit of the scalar, so a window touches ``_COMB_TEETH`` bits spaced
#: ``columns`` apart and the main loop runs ``columns ≈ bits/teeth`` times.
_COMB_TEETH = 4

# Per-curve cache of base-point comb tables.  Keyed on the full (frozen,
# hashable) Curve value — NOT on curve.name — so two distinct Curve objects
# that happen to share a name can never silently share precomputation.
# Value: (columns, [T_1 .. T_{2^teeth - 1}]) with
# T_pattern = sum_{i: bit i of pattern} 2^(i*columns) * G.
_BASE_TABLES: dict[Curve, tuple[int, list[Point]]] = {}


def _wnaf(k: int, width: int) -> list[int]:
    """Compute the width-``w`` non-adjacent form of ``k`` (LSB first)."""
    digits: list[int] = []
    window = 1 << width
    half = window >> 1
    while k > 0:
        if k & 1:
            d = k % window
            if d >= half:
                d -= window
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


def mul_point(scalar: int, point: Point) -> Point:
    """Multiply an arbitrary point by a scalar using width-4 wNAF."""
    curve = point.curve
    k = scalar % curve.n
    if k == 0 or point.is_infinity:
        return Point.infinity(curve)
    trace.record("ec.mul_point")
    return _mul_wnaf_untraced(k, point)


def _mul_wnaf_untraced(k: int, point: Point) -> Point:
    curve = point.curve
    # Precompute odd multiples P, 3P, 5P, ..., (2^(w-1)-1)P.
    table: list[Jacobian] = [to_jacobian(point)]
    twice = jac_double(curve, table[0])
    for _ in range((1 << (_WNAF_WIDTH - 1)) // 2 - 1):
        table.append(jac_add(curve, table[-1], twice))
    digits = _wnaf(k, _WNAF_WIDTH)
    acc: Jacobian = JAC_INFINITY
    for d in reversed(digits):
        acc = jac_double(curve, acc)
        if d > 0:
            acc = jac_add(curve, acc, table[(d - 1) // 2])
        elif d < 0:
            x, y, z = table[(-d - 1) // 2]
            acc = jac_add(curve, acc, (x, (-y) % curve.p, z))
    return from_jacobian(curve, acc)


def _base_table(curve: Curve) -> tuple[int, list[Point]]:
    """Cached comb precomputation for the base point of ``curve``.

    Returns ``(columns, table)`` where ``table[pattern - 1]`` holds the
    affine sum of ``2^(i*columns) * G`` over the set bits ``i`` of
    ``pattern``.  The 2^teeth - 1 combinations are accumulated in Jacobian
    coordinates and normalized together in one batch inversion.
    """
    cached = _BASE_TABLES.get(curve)
    if cached is not None:
        return cached
    columns = -(-curve.n.bit_length() // _COMB_TEETH)  # ceil division
    # Spine: G, 2^columns * G, 2^(2*columns) * G, ... (one per tooth).
    spine: list[Jacobian] = [to_jacobian(curve.generator)]
    for _ in range(_COMB_TEETH - 1):
        jac = spine[-1]
        for _ in range(columns):
            jac = jac_double(curve, jac)
        spine.append(jac)
    combos: list[Jacobian] = []
    for pattern in range(1, 1 << _COMB_TEETH):
        acc: Jacobian = JAC_INFINITY
        for tooth in range(_COMB_TEETH):
            if (pattern >> tooth) & 1:
                acc = jac_add(curve, acc, spine[tooth])
        combos.append(acc)
    table = (columns, normalize_batch(curve, combos))
    _BASE_TABLES[curve] = table
    return table


def _mul_base_jac(k: int, curve: Curve) -> Jacobian:
    """Comb multiplication of the base point; result left in Jacobian.

    The caller normalizes — singly (:func:`mul_base`) or batched across
    many scalars (:func:`mul_base_batch`).  Requires ``1 <= k < n``.
    """
    columns, table = _base_table(curve)
    acc: Jacobian = JAC_INFINITY
    for col in range(columns - 1, -1, -1):
        acc = jac_double(curve, acc)
        pattern = 0
        for tooth in range(_COMB_TEETH):
            if (k >> (tooth * columns + col)) & 1:
                pattern |= 1 << tooth
        if pattern:
            acc = jac_add_mixed(curve, acc, table[pattern - 1])
    return acc


def mul_base(scalar: int, curve: Curve) -> Point:
    """Multiply the curve base point by a scalar (fixed-base comb, cached).

    Embedded libraries special-case base-point multiplication because the
    window table can live in flash; we model the same asymmetry by tracing
    a distinct ``ec.mul_base`` event.  The comb schedule needs only
    ``bits/teeth`` doublings per multiplication (vs. ``bits`` for a
    sliding window), which is what makes CA issuance bursts cheap.
    """
    k = scalar % curve.n
    if k == 0:
        return Point.infinity(curve)
    trace.record("ec.mul_base")
    return from_jacobian(curve, _mul_base_jac(k, curve))


def mul_base_batch(scalars, curve: Curve) -> list[Point]:
    """Base-point multiplication of many scalars with shared normalization.

    Computes ``[k*G for k in scalars]`` leaving every result in Jacobian
    coordinates, then converts the whole batch to affine with a single
    Montgomery-trick inversion (:func:`~repro.ec.point.normalize_batch`).
    Records one ``ec.mul_base`` event per non-zero scalar, exactly like
    the scalar-at-a-time path, so protocol cost traces are unchanged.
    """
    jacs: list[Jacobian] = []
    for scalar in scalars:
        k = scalar % curve.n
        if k == 0:
            jacs.append(JAC_INFINITY)
            continue
        trace.record("ec.mul_base")
        jacs.append(_mul_base_jac(k, curve))
    return normalize_batch(curve, jacs)


def mul_double(u: int, p_point: Point, v: int, q_point: Point) -> Point:
    """Compute ``u*P + v*Q`` with Strauss–Shamir interleaving.

    Costs roughly 1.25 single multiplications instead of 2, which is why
    ECDSA verification (``u1*G + u2*Q``) and SCIANC's fused
    reconstruct-and-derive are cheaper than two independent multiplies.
    """
    if p_point.curve.name != q_point.curve.name:
        raise CurveError("mul_double requires points on the same curve")
    curve = p_point.curve
    u %= curve.n
    v %= curve.n
    if u == 0 and v == 0:
        return Point.infinity(curve)
    trace.record("ec.mul_double")
    # Precompute P, Q and P+Q as affine points for mixed addition.
    pq_jac = jac_add(curve, to_jacobian(p_point), to_jacobian(q_point))
    pq = from_jacobian(curve, pq_jac)
    acc: Jacobian = JAC_INFINITY
    bits = max(u.bit_length(), v.bit_length())
    for i in range(bits - 1, -1, -1):
        acc = jac_double(curve, acc)
        ub = (u >> i) & 1
        vb = (v >> i) & 1
        if ub and vb:
            acc = jac_add_mixed(curve, acc, pq)
        elif ub:
            acc = jac_add_mixed(curve, acc, p_point)
        elif vb:
            acc = jac_add_mixed(curve, acc, q_point)
    return from_jacobian(curve, acc)


def mul_ladder(scalar: int, point: Point) -> Point:
    """Uniform double-and-add-always scalar multiplication.

    Executes an addition on every bit regardless of its value, mimicking the
    regular operation schedule of side-channel-hardened embedded code.  Used
    by tests as an independent oracle for the faster strategies.
    """
    curve = point.curve
    k = scalar % curve.n
    if k == 0 or point.is_infinity:
        return Point.infinity(curve)
    trace.record("ec.mul_point")
    r0: Jacobian = JAC_INFINITY
    r1: Jacobian = to_jacobian(point)
    for i in range(k.bit_length() - 1, -1, -1):
        if (k >> i) & 1:
            r0 = jac_add(curve, r0, r1)
            r1 = jac_double(curve, r1)
        else:
            r1 = jac_add(curve, r0, r1)
            r0 = jac_double(curve, r0)
    return from_jacobian(curve, r0)
