"""Scalar multiplication strategies.

Four strategies are provided, mirroring the menu an embedded crypto library
offers:

* :func:`mul_point` — width-4 wNAF, the general-purpose workhorse
  (traces ``ec.mul_point``).
* :func:`mul_base` — fixed-window multiplication of the curve base point
  with a cached per-curve precomputation table (traces ``ec.mul_base``).
* :func:`mul_double` — Strauss–Shamir simultaneous multiplication
  ``u*P + v*Q`` used by ECDSA verification and by the fused
  reconstruct-and-derive step of the SCIANC protocol
  (traces ``ec.mul_double``).
* :func:`mul_ladder` — a uniform double-and-add-always ladder approximating
  the constant-time behaviour of hardened embedded code
  (traces ``ec.mul_point``; same price class).

All strategies agree on results (property-tested) and differ only in
operation schedule, which is what the hardware model prices.
"""

from __future__ import annotations

from .. import trace
from ..errors import CurveError
from .curve import Curve
from .point import (
    JAC_INFINITY,
    Jacobian,
    Point,
    from_jacobian,
    jac_add,
    jac_add_mixed,
    jac_double,
    to_jacobian,
)

_WNAF_WIDTH = 4
_BASE_WINDOW = 4

# Per-curve cache of base-point window tables: curve name -> list[Point].
_BASE_TABLES: dict[str, list[Point]] = {}


def _wnaf(k: int, width: int) -> list[int]:
    """Compute the width-``w`` non-adjacent form of ``k`` (LSB first)."""
    digits: list[int] = []
    window = 1 << width
    half = window >> 1
    while k > 0:
        if k & 1:
            d = k % window
            if d >= half:
                d -= window
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


def mul_point(scalar: int, point: Point) -> Point:
    """Multiply an arbitrary point by a scalar using width-4 wNAF."""
    curve = point.curve
    k = scalar % curve.n
    if k == 0 or point.is_infinity:
        return Point.infinity(curve)
    trace.record("ec.mul_point")
    return _mul_wnaf_untraced(k, point)


def _mul_wnaf_untraced(k: int, point: Point) -> Point:
    curve = point.curve
    # Precompute odd multiples P, 3P, 5P, ..., (2^(w-1)-1)P.
    table: list[Jacobian] = [to_jacobian(point)]
    twice = jac_double(curve, table[0])
    for _ in range((1 << (_WNAF_WIDTH - 1)) // 2 - 1):
        table.append(jac_add(curve, table[-1], twice))
    digits = _wnaf(k, _WNAF_WIDTH)
    acc: Jacobian = JAC_INFINITY
    for d in reversed(digits):
        acc = jac_double(curve, acc)
        if d > 0:
            acc = jac_add(curve, acc, table[(d - 1) // 2])
        elif d < 0:
            x, y, z = table[(-d - 1) // 2]
            acc = jac_add(curve, acc, (x, (-y) % curve.p, z))
    return from_jacobian(curve, acc)


def _base_table(curve: Curve) -> list[Point]:
    """Affine window table [G, 2G, ..., (2^w - 1)G] for the base point."""
    cached = _BASE_TABLES.get(curve.name)
    if cached is not None:
        return cached
    g = curve.generator
    table = [g]
    jac = to_jacobian(g)
    for _ in range((1 << _BASE_WINDOW) - 2):
        jac_next = jac_add_mixed(curve, to_jacobian(table[-1]), g)
        table.append(from_jacobian(curve, jac_next))
        jac = jac_next
    _BASE_TABLES[curve.name] = table
    return table


def mul_base(scalar: int, curve: Curve) -> Point:
    """Multiply the curve base point by a scalar (fixed-window, cached).

    Embedded libraries special-case base-point multiplication because the
    window table can live in flash; we model the same asymmetry by tracing
    a distinct ``ec.mul_base`` event.
    """
    k = scalar % curve.n
    if k == 0:
        return Point.infinity(curve)
    trace.record("ec.mul_base")
    table = _base_table(curve)
    acc: Jacobian = JAC_INFINITY
    # Process the scalar in 4-bit windows, MSB first.
    nibbles = []
    while k > 0:
        nibbles.append(k & ((1 << _BASE_WINDOW) - 1))
        k >>= _BASE_WINDOW
    for nib in reversed(nibbles):
        for _ in range(_BASE_WINDOW):
            acc = jac_double(curve, acc)
        if nib:
            acc = jac_add_mixed(curve, acc, table[nib - 1])
    return from_jacobian(curve, acc)


def mul_double(u: int, p_point: Point, v: int, q_point: Point) -> Point:
    """Compute ``u*P + v*Q`` with Strauss–Shamir interleaving.

    Costs roughly 1.25 single multiplications instead of 2, which is why
    ECDSA verification (``u1*G + u2*Q``) and SCIANC's fused
    reconstruct-and-derive are cheaper than two independent multiplies.
    """
    if p_point.curve.name != q_point.curve.name:
        raise CurveError("mul_double requires points on the same curve")
    curve = p_point.curve
    u %= curve.n
    v %= curve.n
    if u == 0 and v == 0:
        return Point.infinity(curve)
    trace.record("ec.mul_double")
    # Precompute P, Q and P+Q as affine points for mixed addition.
    pq_jac = jac_add(curve, to_jacobian(p_point), to_jacobian(q_point))
    pq = from_jacobian(curve, pq_jac)
    acc: Jacobian = JAC_INFINITY
    bits = max(u.bit_length(), v.bit_length())
    for i in range(bits - 1, -1, -1):
        acc = jac_double(curve, acc)
        ub = (u >> i) & 1
        vb = (v >> i) & 1
        if ub and vb:
            acc = jac_add_mixed(curve, acc, pq)
        elif ub:
            acc = jac_add_mixed(curve, acc, p_point)
        elif vb:
            acc = jac_add_mixed(curve, acc, q_point)
    return from_jacobian(curve, acc)


def mul_ladder(scalar: int, point: Point) -> Point:
    """Uniform double-and-add-always scalar multiplication.

    Executes an addition on every bit regardless of its value, mimicking the
    regular operation schedule of side-channel-hardened embedded code.  Used
    by tests as an independent oracle for the faster strategies.
    """
    curve = point.curve
    k = scalar % curve.n
    if k == 0 or point.is_infinity:
        return Point.infinity(curve)
    trace.record("ec.mul_point")
    r0: Jacobian = JAC_INFINITY
    r1: Jacobian = to_jacobian(point)
    for i in range(k.bit_length() - 1, -1, -1):
        if (k >> i) & 1:
            r0 = jac_add(curve, r0, r1)
            r1 = jac_double(curve, r1)
        else:
            r1 = jac_add(curve, r0, r1)
            r0 = jac_double(curve, r0)
    return from_jacobian(curve, r0)
