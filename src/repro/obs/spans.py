"""Hierarchical sim-time spans with deterministic identifiers.

A :class:`Span` is one interval on the *simulated* clock — a fleet run,
one shard's lifetime, one vehicle's lifecycle, one enrollment or session
establishment inside it.  Spans form a tree: every span except the root
names a parent, and a child's interval must nest inside its parent's.

Determinism is the design constraint everything here serves:

* **Ids are deterministic.**  Span ids are assigned sequentially in
  ``begin()`` order.  The orchestrator opens spans at deterministic
  simulation events, so two runs with equal ``(config, seed)`` produce
  identical id streams — no UUIDs, no wall-clock, no process state.
* **Timestamps are sim-time.**  ``start_ms``/``end_ms`` come from the
  discrete-event clock, never from the host.
* **Wall-clock is opt-in and clearly marked.**  With
  ``wall_clock=True`` the recorder annotates each finished span with a
  host-monotonic ``wall_ns`` duration.  That field is *non-deterministic
  by definition*; :meth:`Span.deterministic_dict` strips it, and the
  determinism property tests compare exactly that view.

When no recorder is attached to a fleet run nothing in this module is
ever called — the same zero-overhead-when-disabled contract
:mod:`repro.trace` honors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import ObsError

__all__ = ["Span", "SpanRecorder"]

#: Well-known span categories the fleet instrumentation emits.  The set
#: is advisory (custom callers may invent categories); exporters use it
#: to group tracks.
FLEET_CATEGORIES = (
    "run",
    "shard",
    "vehicle",
    "enroll",
    "establish",
    "re-enroll",
    "rekey",
    "migrate",
    "rejoin",
    "failover",
    "v2v",
    "injection",
    "ca-batch",
    "heartbeat",
)


def _freeze_attrs(attributes: dict) -> tuple:
    """Canonicalize an attribute mapping (sorted, hashable, JSON-safe)."""
    frozen = []
    for key in sorted(attributes):
        value = attributes[key]
        if value is None or isinstance(value, (str, int, float, bool)):
            frozen.append((key, value))
        else:
            frozen.append((key, str(value)))
    return tuple(frozen)


@dataclass(frozen=True)
class Span:
    """One finished interval on the simulated clock.

    Attributes:
        span_id: deterministic sequential id (``begin()`` order).
        parent_id: id of the enclosing span, ``None`` for a root.
        name: human-readable label (``veh0003:establish`` ...).
        category: coarse class (one of :data:`FLEET_CATEGORIES` for
            fleet runs).
        start_ms / end_ms: simulated interval, ``end_ms >= start_ms``.
        attributes: sorted ``(key, value)`` pairs of deterministic
            annotations (shard index, session generation, ...).
        wall_ns: host-monotonic duration of the instrumented block —
            **non-deterministic**, present only under
            ``SpanRecorder(wall_clock=True)`` and excluded from
            :meth:`deterministic_dict`.
    """

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_ms: float
    end_ms: float
    attributes: tuple = ()
    wall_ns: int | None = None

    @property
    def duration_ms(self) -> float:
        """Simulated duration of this span."""
        return self.end_ms - self.start_ms

    def deterministic_dict(self) -> dict:
        """JSON-ready mapping with every non-deterministic field removed."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "attrs": {key: value for key, value in self.attributes},
        }

    def as_dict(self) -> dict:
        """JSON-ready mapping including the wall-clock annotation."""
        data = self.deterministic_dict()
        if self.wall_ns is not None:
            data["wall"] = {"wall_ns": self.wall_ns}
        return data


class _OpenSpan:
    """Book-keeping for a span between ``begin()`` and ``end()``."""

    __slots__ = ("span_id", "parent_id", "name", "category", "start_ms",
                 "attributes", "wall_t0")

    def __init__(self, span_id, parent_id, name, category, start_ms,
                 attributes, wall_t0):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start_ms = start_ms
        self.attributes = attributes
        self.wall_t0 = wall_t0


class SpanRecorder:
    """Collects a deterministic span tree for one run.

    The recorder never touches a clock itself: callers pass the
    simulated timestamp into :meth:`begin`/:meth:`end` explicitly, so the
    recorder composes with any clock source (the fleet instrumentation
    passes ``Simulator.now``).

    Example::

        rec = SpanRecorder()
        run = rec.begin("run", "run", 0.0)
        child = rec.begin("veh0", "vehicle", 1.5, parent=run, shard=0)
        rec.end(child, 9.0)
        rec.end(run, 10.0)
        rec.validate()          # tree well-formed: parents exist, nesting
    """

    def __init__(self, wall_clock: bool = False) -> None:
        self.wall_clock = wall_clock
        self._finished: list[Span] = []
        self._open: dict[int, _OpenSpan] = {}
        self._next_id = 0

    # -- recording ----------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str,
        start_ms: float,
        parent: int | None = None,
        **attributes,
    ) -> int:
        """Open a span; returns its deterministic id."""
        if parent is not None and not self._knows(parent):
            raise ObsError(
                f"span {name!r} names unknown parent id {parent}"
            )
        span_id = self._next_id
        self._next_id += 1
        self._open[span_id] = _OpenSpan(
            span_id,
            parent,
            name,
            category,
            start_ms,
            dict(attributes),
            time.perf_counter_ns() if self.wall_clock else None,
        )
        return span_id

    def end(self, span_id: int, end_ms: float, **attributes) -> Span:
        """Close an open span at ``end_ms``; extra attributes merge in."""
        try:
            pending = self._open.pop(span_id)
        except KeyError:
            raise ObsError(
                f"span id {span_id} is not open (double end, or never"
                " begun)"
            ) from None
        if end_ms < pending.start_ms:
            raise ObsError(
                f"span {pending.name!r} would end at {end_ms} ms, before"
                f" its start {pending.start_ms} ms"
            )
        pending.attributes.update(attributes)
        span = Span(
            span_id=pending.span_id,
            parent_id=pending.parent_id,
            name=pending.name,
            category=pending.category,
            start_ms=pending.start_ms,
            end_ms=end_ms,
            attributes=_freeze_attrs(pending.attributes),
            wall_ns=(
                time.perf_counter_ns() - pending.wall_t0
                if pending.wall_t0 is not None
                else None
            ),
        )
        self._finished.append(span)
        return span

    def event(
        self,
        name: str,
        category: str,
        at_ms: float,
        parent: int | None = None,
        **attributes,
    ) -> Span:
        """Record a zero-duration marker span (e.g. a shard rejoin)."""
        span_id = self.begin(
            name, category, at_ms, parent=parent, **attributes
        )
        return self.end(span_id, at_ms)

    # -- introspection ------------------------------------------------------

    def _knows(self, span_id: int) -> bool:
        return span_id in self._open or any(
            span.span_id == span_id for span in self._finished
        )

    @property
    def open_count(self) -> int:
        """Number of spans begun but not yet ended."""
        return len(self._open)

    def finished(self) -> tuple[Span, ...]:
        """Finished spans sorted by deterministic id."""
        return tuple(sorted(self._finished, key=lambda s: s.span_id))

    def by_category(self, category: str) -> tuple[Span, ...]:
        """Finished spans of one category, id-sorted."""
        return tuple(
            span for span in self.finished() if span.category == category
        )

    def validate(self) -> None:
        """Check the finished tree is well-formed; raise :class:`ObsError`.

        Well-formed means: no span is still open, every ``parent_id``
        resolves to a finished span, every interval is non-negative, and
        every child's interval nests inside its parent's.  This is the
        invariant the hypothesis property suite drives.
        """
        if self._open:
            names = [s.name for s in self._open.values()][:5]
            raise ObsError(f"spans still open: {names}")
        by_id = {span.span_id: span for span in self._finished}
        for span in self._finished:
            if span.end_ms < span.start_ms:
                raise ObsError(
                    f"span {span.name!r} has negative interval"
                    f" [{span.start_ms}, {span.end_ms}]"
                )
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                raise ObsError(
                    f"span {span.name!r} names unknown parent"
                    f" {span.parent_id}"
                )
            if not (
                parent.start_ms <= span.start_ms
                and span.end_ms <= parent.end_ms
            ):
                raise ObsError(
                    f"span {span.name!r} [{span.start_ms}, {span.end_ms}]"
                    f" escapes parent {parent.name!r}"
                    f" [{parent.start_ms}, {parent.end_ms}]"
                )
