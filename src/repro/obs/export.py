"""Exporters for the observability event stream.

Three output shapes, all derived from the same deterministic events:

* **JSONL** — one JSON object per line; ``meta`` first, then spans in
  id order, then heartbeats, then metric snapshots.  This is the
  machine-readable archive format and the thing CI validates.
* **Chrome trace-event JSON** — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Spans become
  ``"X"`` complete events on per-shard / per-vehicle tracks; heartbeats
  become ``"C"`` counter series.
* **Markdown rollup** — a human summary suitable for
  :func:`repro.analysis.report.attach_observability`.

Validation is hand-rolled on purpose: the CI image installs pytest,
hypothesis and cryptography but **not** ``jsonschema``, so this module
carries a small validator for the subset of JSON Schema the event
schemas actually use (``type``, ``properties``, ``required``,
``items``, ``enum``, ``minimum``, ``additionalProperties``).
"""

from __future__ import annotations

import json

from ..errors import ObsError
from .spans import Span

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "EVENT_SCHEMAS",
    "chrome_trace",
    "markdown_rollup",
    "read_jsonl",
    "validate_chrome_trace",
    "validate_events",
    "validate_schema",
    "write_chrome_trace",
    "write_jsonl",
]

# ---------------------------------------------------------------------------
# Schemas (JSON-Schema subset; see validate_schema for supported keywords)
# ---------------------------------------------------------------------------

_NUMBER = {"type": "number"}
_STRING = {"type": "string"}

#: Per-event-type schemas for the JSONL stream, keyed by ``event["type"]``.
EVENT_SCHEMAS = {
    "meta": {
        "type": "object",
        "required": ["type", "run", "sim_end_ms"],
        "properties": {
            "type": {"enum": ["meta"]},
            "run": _STRING,
            "sim_end_ms": _NUMBER,
            "backend": {"type": ["string", "null"]},
            "n_vehicles": {"type": "integer", "minimum": 0},
            "shards": {"type": "integer", "minimum": 0},
            "digest": {"type": ["string", "null"]},
            "wall": {"type": "object"},
        },
    },
    "span": {
        "type": "object",
        "required": ["type", "id", "parent", "name", "cat", "start_ms",
                     "end_ms", "attrs"],
        "properties": {
            "type": {"enum": ["span"]},
            "id": {"type": "integer", "minimum": 0},
            "parent": {"type": ["integer", "null"]},
            "name": _STRING,
            "cat": _STRING,
            "start_ms": _NUMBER,
            "end_ms": _NUMBER,
            "attrs": {"type": "object"},
            "wall": {"type": "object"},
        },
    },
    "heartbeat": {
        "type": "object",
        "required": ["type", "sim_ms", "vehicles_done", "vehicles_total",
                     "records_sent"],
        "properties": {
            "type": {"enum": ["heartbeat"]},
            "sim_ms": _NUMBER,
            "vehicles_done": {"type": "integer", "minimum": 0},
            "vehicles_total": {"type": "integer", "minimum": 0},
            "records_sent": {"type": "integer", "minimum": 0},
            "wall": {"type": "object"},
        },
    },
    "counter": {
        "type": "object",
        "required": ["type", "name", "labels", "value"],
        "properties": {
            "type": {"enum": ["counter"]},
            "name": _STRING,
            "labels": {"type": "object"},
            "value": {"type": "integer", "minimum": 0},
        },
    },
    "gauge": {
        "type": "object",
        "required": ["type", "name", "labels", "value"],
        "properties": {
            "type": {"enum": ["gauge"]},
            "name": _STRING,
            "labels": {"type": "object"},
            "value": _NUMBER,
        },
    },
    "histogram": {
        "type": "object",
        "required": ["type", "name", "labels", "count", "sum", "sum_exact",
                     "bounds", "buckets"],
        "properties": {
            "type": {"enum": ["histogram"]},
            "name": _STRING,
            "labels": {"type": "object"},
            "count": {"type": "integer", "minimum": 0},
            "sum": _NUMBER,
            "sum_exact": {"type": "array", "items": {"type": "integer"}},
            "min": {"type": ["number", "null"]},
            "max": {"type": ["number", "null"]},
            "bounds": {"type": "array", "items": _NUMBER},
            "buckets": {"type": "array",
                        "items": {"type": "integer", "minimum": 0}},
        },
    },
}

#: Schema for the Chrome trace-event file as a whole.
CHROME_TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "displayTimeUnit": {"enum": ["ms", "ns"]},
        "metadata": {"type": "object"},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid", "name"],
                "properties": {
                    "ph": {"enum": ["X", "I", "C", "M"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "name": _STRING,
                    "cat": _STRING,
                    "ts": _NUMBER,
                    "dur": {"type": "number", "minimum": 0},
                    "args": {"type": "object"},
                    "s": {"enum": ["g", "p", "t"]},
                },
            },
        },
    },
}


def validate_schema(instance, schema, path: str = "$") -> None:
    """Validate ``instance`` against a JSON-Schema subset.

    Supports ``type`` (string or list), ``enum``, ``required``,
    ``properties``, ``additionalProperties`` (boolean form), ``items``
    and ``minimum`` — everything :data:`EVENT_SCHEMAS` uses.  Raises
    :class:`ObsError` naming the failing path.
    """
    expected = schema.get("type")
    if expected is not None:
        kinds = [expected] if isinstance(expected, str) else list(expected)
        if not any(_is_type(instance, kind) for kind in kinds):
            raise ObsError(
                f"{path}: expected {kinds}, got {type(instance).__name__}"
            )
    if "enum" in schema and instance not in schema["enum"]:
        raise ObsError(
            f"{path}: {instance!r} not in enum {schema['enum']}"
        )
    if "minimum" in schema and isinstance(instance, (int, float)):
        if isinstance(instance, bool) or instance < schema["minimum"]:
            raise ObsError(
                f"{path}: {instance!r} below minimum {schema['minimum']}"
            )
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise ObsError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, value in instance.items():
            if key in properties:
                validate_schema(value, properties[key], f"{path}.{key}")
            elif schema.get("additionalProperties") is False:
                raise ObsError(f"{path}: unexpected key {key!r}")
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            validate_schema(item, schema["items"], f"{path}[{index}]")


def _is_type(instance, kind: str) -> bool:
    if kind == "null":
        return instance is None
    if kind == "boolean":
        return isinstance(instance, bool)
    if kind == "integer":
        return isinstance(instance, int) and not isinstance(instance, bool)
    if kind == "number":
        return (
            isinstance(instance, (int, float))
            and not isinstance(instance, bool)
        )
    if kind == "string":
        return isinstance(instance, str)
    if kind == "object":
        return isinstance(instance, dict)
    if kind == "array":
        return isinstance(instance, list)
    raise ObsError(f"unknown schema type {kind!r}")


def validate_events(events) -> int:
    """Validate a JSONL event stream; returns the number of events."""
    count = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict) or "type" not in event:
            raise ObsError(f"event {index}: not an object with a 'type'")
        kind = event["type"]
        schema = EVENT_SCHEMAS.get(kind)
        if schema is None:
            raise ObsError(
                f"event {index}: unknown event type {kind!r}"
                f" (known: {sorted(EVENT_SCHEMAS)})"
            )
        validate_schema(event, schema, path=f"$[{index}]")
        count += 1
    return count


def validate_chrome_trace(trace: dict) -> int:
    """Validate a Chrome trace document; returns the event count."""
    validate_schema(trace, CHROME_TRACE_SCHEMA, path="$")
    return len(trace["traceEvents"])


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def write_jsonl(path, events) -> int:
    """Write events one-per-line; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path, validate=False) -> list:
    """Load a JSONL event stream back into a list of dicts.

    A corrupt line raises :class:`~repro.errors.ObsError` naming the
    file and the 1-based line number (rather than leaking the raw
    ``json.JSONDecodeError``).  With ``validate=True`` the loaded
    events are additionally run through :func:`validate_events`, so a
    schema-invalid archive fails at load time instead of corrupting a
    downstream digest tree or lint pass.
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ObsError(
                    f"{path}: line {lineno}: corrupt JSONL event"
                    f" ({exc.msg} at column {exc.colno})"
                ) from exc
    if validate:
        validate_events(events)
    return events


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------

#: Track (tid) layout: run-level activity on track 0, one track per
#: shard starting at 100, one per vehicle starting at 1000.
_RUN_TID = 0
_SHARD_TID_BASE = 100
_VEHICLE_TID_BASE = 1000


def _span_tid(span: Span) -> int:
    attrs = dict(span.attributes)
    if span.category in ("run", "injection", "heartbeat"):
        return _RUN_TID
    if "vehicle" in attrs:
        return _VEHICLE_TID_BASE + int(attrs["vehicle"])
    if "shard" in attrs:
        return _SHARD_TID_BASE + int(attrs["shard"])
    return _RUN_TID


def chrome_trace(spans, heartbeats=(), meta=None) -> dict:
    """Build a Chrome trace-event document from finished spans.

    ``ts``/``dur`` are microseconds (sim milliseconds × 1000) so the
    Perfetto timeline reads directly in simulated time.  Heartbeats
    become a ``vehicles_done`` counter series on the run track.
    """
    events = []
    tids = {}
    for span in spans:
        tid = _span_tid(span)
        if tid not in tids:
            if tid == _RUN_TID:
                label = "fleet run"
            elif tid >= _VEHICLE_TID_BASE:
                label = f"vehicle {tid - _VEHICLE_TID_BASE}"
            else:
                label = f"shard {tid - _SHARD_TID_BASE}"
            tids[tid] = label
        args = {key: value for key, value in span.attributes}
        if span.wall_ns is not None:
            args["wall_ns"] = span.wall_ns
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "name": span.name,
                "cat": span.category,
                "ts": span.start_ms * 1000.0,
                "dur": span.duration_ms * 1000.0,
                "args": args,
            }
        )
    for beat in heartbeats:
        events.append(
            {
                "ph": "C",
                "pid": 1,
                "tid": _RUN_TID,
                "name": "fleet progress",
                "ts": beat["sim_ms"] * 1000.0,
                "args": {
                    "vehicles_done": beat["vehicles_done"],
                    "records_sent": beat["records_sent"],
                },
            }
        )
    header = [
        {
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": label},
        }
        for tid, label in sorted(tids.items())
    ]
    return {
        "displayTimeUnit": "ms",
        "metadata": dict(meta or {}),
        "traceEvents": header + events,
    }


def write_chrome_trace(path, spans, heartbeats=(), meta=None) -> dict:
    """Write (and return) the Chrome trace document for ``spans``."""
    trace = chrome_trace(spans, heartbeats=heartbeats, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
    return trace


# ---------------------------------------------------------------------------
# Markdown rollup
# ---------------------------------------------------------------------------

def markdown_rollup(spans, metrics, heartbeats=(), meta=None) -> str:
    """Human-readable telemetry summary (markdown body, no H2 header).

    ``metrics`` is a :class:`repro.obs.metrics.MetricsSnapshot`.
    """
    lines = []
    meta = dict(meta or {})
    if meta:
        described = ", ".join(
            f"{key}={meta[key]}"
            for key in ("run", "n_vehicles", "shards", "backend",
                        "sim_end_ms")
            if meta.get(key) is not None
        )
        if described:
            lines.append(f"Run: {described}")
            lines.append("")
    by_category: dict = {}
    for span in spans:
        entry = by_category.setdefault(span.category, [0, 0.0])
        entry[0] += 1
        entry[1] += span.duration_ms
    if by_category:
        lines.append("| span category | count | total sim-time (ms) |")
        lines.append("| --- | ---: | ---: |")
        for category in sorted(by_category):
            count, total = by_category[category]
            lines.append(f"| {category} | {count} | {total:.3f} |")
        lines.append("")
    histogram_rows = sorted(metrics.histograms.items())
    if histogram_rows:
        lines.append(
            "| metric | labels | count | mean (ms) | max (ms) |"
        )
        lines.append("| --- | --- | ---: | ---: | ---: |")
        for (name, labels), snap in histogram_rows:
            label_text = (
                ", ".join(f"{k}={v}" for k, v in labels) or "—"
            )
            max_text = f"{snap.max:.3f}" if snap.max is not None else "—"
            lines.append(
                f"| {name} | {label_text} | {snap.count}"
                f" | {snap.mean:.3f} | {max_text} |"
            )
        lines.append("")
    counter_rows = sorted(metrics.counters.items())
    if counter_rows:
        lines.append("| counter | labels | value |")
        lines.append("| --- | --- | ---: |")
        for (name, labels), value in counter_rows:
            label_text = (
                ", ".join(f"{k}={v}" for k, v in labels) or "—"
            )
            lines.append(f"| {name} | {label_text} | {value} |")
        lines.append("")
    gauge_rows = sorted(metrics.gauges.items())
    if gauge_rows:
        lines.append("| gauge (high-watermark) | labels | value |")
        lines.append("| --- | --- | ---: |")
        for (name, labels), value in gauge_rows:
            label_text = (
                ", ".join(f"{k}={v}" for k, v in labels) or "—"
            )
            lines.append(f"| {name} | {label_text} | {value:g} |")
        lines.append("")
    heartbeats = list(heartbeats)
    if heartbeats:
        last = heartbeats[-1]
        lines.append(
            f"{len(heartbeats)} heartbeats; final:"
            f" {last['vehicles_done']}/{last['vehicles_total']} vehicles"
            f" done, {last['records_sent']} records,"
            f" sim-time {last['sim_ms']:.1f} ms."
        )
        peak = max(
            (beat.get("wall", {}).get("peak_rss_kb") or 0)
            for beat in heartbeats
        )
        if peak:
            lines.append(f"Peak RSS (non-deterministic): {peak} kB.")
        lines.append("")
    if not lines:
        lines.append("No telemetry recorded.")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
