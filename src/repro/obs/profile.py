"""Backend profiling hooks: wall-time per primitive event class.

:class:`ProfilingBackend` wraps any registered crypto backend and times
every call through the seam, bucketed by the same event classes
:mod:`repro.trace` counts (``ec.mul_base``, ``ec.mul_point``,
``ec.mul_double``, ``sha2``, ``hmac``, ``aes``).  Because the wrapper
is *pure delegation* — same bytes out, no extra trace events, no DRBG
draws — golden digests survive profiling bit-identically; only host
wall-clock numbers (non-deterministic by definition) are added.

:func:`profile_fleet_run` runs one fleet under a profiled backend and
reconciles the measured wall time against the ``CostTrace`` counts of
the same run, and :func:`speedup_table` folds a reference profile and
an accelerated profile into the per-primitive speedup table
``bench_fleet_scale.py --json`` emits.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager

from ..backend import (
    register_backend,
    unregister_backend,
    use_backend,
)
from ..errors import ObsError
from .. import trace as trace_mod

__all__ = [
    "PRIMITIVE_CLASSES",
    "ProfileReport",
    "ProfilingBackend",
    "profile_fleet_run",
    "profiled_backend",
    "render_speedup_table",
    "speedup_table",
]

#: Profiled event classes and the ``CostTrace`` event whose count they
#: reconcile against (``None`` → no direct trace counterpart).
PRIMITIVE_CLASSES = {
    "ec.mul_base": "ec.mul_base",
    "ec.mul_point": "ec.mul_point",
    "ec.mul_double": "ec.mul_double",
    "ec.normalize": None,
    "sha2": "sha2.block",
    "hmac": "hmac.call",
    "aes": "aes.block",
}


class _TimedProxy:
    """Times every method call on a wrapped object under one event class.

    Used for the streaming hash and cipher objects the backend hands
    out, so ``update``/``digest``/``encrypt_cbc``/... time is attributed
    to the class of the call that created the object.
    """

    __slots__ = ("_inner", "_profile", "_event")

    def __init__(self, inner, profile, event):
        self._inner = inner
        self._profile = profile
        self._event = event

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr
        profile, event = self._profile, self._event

        def timed(*args, **kwargs):
            start = time.perf_counter_ns()
            try:
                result = attr(*args, **kwargs)
            finally:
                profile._add(event, time.perf_counter_ns() - start, calls=0)
            if result is self._inner:  # chainable update() stays wrapped
                return self
            return result

        return timed


class ProfilingBackend:
    """A delegating crypto backend that times each primitive class.

    The wrapper satisfies the full :class:`repro.backend.CryptoBackend`
    surface by forwarding to ``inner`` unchanged, so byte parity and
    trace parity are inherited — it only accumulates
    ``{event: {"wall_ns", "calls"}}`` on the side.
    """

    def __init__(self, inner):
        self.inner = inner
        self.name = f"profiled:{inner.name}"
        self.timings: dict = {
            event: {"wall_ns": 0, "calls": 0} for event in PRIMITIVE_CLASSES
        }

    def _add(self, event: str, wall_ns: int, calls: int = 1) -> None:
        bucket = self.timings[event]
        bucket["wall_ns"] += wall_ns
        bucket["calls"] += calls

    def _timed(self, event, method, *args, calls: int = 1):
        start = time.perf_counter_ns()
        try:
            return method(*args)
        finally:
            self._add(event, time.perf_counter_ns() - start, calls=calls)

    # -- hash / mac / cipher ------------------------------------------------

    def create_hash(self, name: str, data: bytes = b""):
        """Delegate and time under the ``sha2`` class; proxy-wrapped."""
        start = time.perf_counter_ns()
        obj = self.inner.create_hash(name, data)
        self._add("sha2", time.perf_counter_ns() - start)
        return _TimedProxy(obj, self, "sha2")

    def hash_digest(self, name: str, data: bytes) -> bytes:
        """Delegate ``hash_digest``, timed under ``sha2``."""
        return self._timed("sha2", self.inner.hash_digest, name, data)

    def hmac_digest(self, key, message, hash_name) -> bytes:
        """Delegate ``hmac_digest``, timed under ``hmac``."""
        return self._timed(
            "hmac", self.inner.hmac_digest, key, message, hash_name
        )

    def create_cipher(self, key: bytes):
        """Delegate and time under the ``aes`` class; proxy-wrapped."""
        start = time.perf_counter_ns()
        obj = self.inner.create_cipher(key)
        self._add("aes", time.perf_counter_ns() - start)
        return _TimedProxy(obj, self, "aes")

    # -- elliptic curve -----------------------------------------------------

    def ec_mul_base(self, curve, k):
        """Delegate ``ec_mul_base``, timed under ``ec.mul_base``."""
        return self._timed("ec.mul_base", self.inner.ec_mul_base, curve, k)

    def ec_mul(self, curve, k, point):
        """Delegate ``ec_mul``, timed under ``ec.mul_point``."""
        return self._timed("ec.mul_point", self.inner.ec_mul, curve, k, point)

    def ec_mul_double(self, curve, u, p_point, v, q_point):
        """Delegate ``ec_mul_double``, timed under ``ec.mul_double``."""
        return self._timed(
            "ec.mul_double",
            self.inner.ec_mul_double,
            curve, u, p_point, v, q_point,
        )

    def ec_mul_base_batch(self, curve, ks):
        """Delegate the batch; one timing, ``len(ks)`` calls."""
        return self._timed(
            "ec.mul_base", self.inner.ec_mul_base_batch, curve, ks,
            calls=len(ks),
        )

    def ec_mul_double_batch(self, curve, terms):
        """Delegate the batch; one timing, ``len(terms)`` calls."""
        return self._timed(
            "ec.mul_double", self.inner.ec_mul_double_batch, curve, terms,
            calls=len(terms),
        )

    def ec_normalize_batch(self, curve, jacs):
        """Delegate the batch; one timing, ``len(jacs)`` calls."""
        return self._timed(
            "ec.normalize", self.inner.ec_normalize_batch, curve, jacs,
            calls=len(jacs),
        )

    def describe(self) -> dict:
        """The inner backend's description, marked ``profiled``."""
        info = dict(self.inner.describe())
        info["name"] = self.name
        info["profiled"] = True
        return info


@contextmanager
def profiled_backend(base: str = "reference", name: str = "profiled"):
    """Activate a profiling wrapper around backend ``base`` for a block.

    Registers a temporary backend ``name``, scopes it with
    :func:`repro.backend.use_backend`, and always unregisters on exit so
    ``available_backends()`` is left untouched.  Yields the
    :class:`ProfilingBackend` (read ``.timings`` after the block).
    """
    with use_backend(base) as inner:
        profiler = ProfilingBackend(inner)
    register_backend(name, lambda: profiler)
    try:
        with use_backend(name):
            yield profiler
    finally:
        unregister_backend(name)


@dataclasses.dataclass(frozen=True)
class ProfileReport:
    """One profiled fleet run: wall time + trace counts per class."""

    backend: str
    wall_s: float
    digest: str
    timings: dict
    trace_counts: dict

    def rows(self) -> list:
        """Per-class rows reconciling wall time against trace counts."""
        out = []
        for event, trace_event in PRIMITIVE_CLASSES.items():
            bucket = self.timings[event]
            count = (
                self.trace_counts.get(trace_event, 0)
                if trace_event is not None
                else bucket["calls"]
            )
            out.append(
                {
                    "event": event,
                    "trace_event": trace_event,
                    "wall_ns": bucket["wall_ns"],
                    "calls": bucket["calls"],
                    "trace_count": count,
                }
            )
        return out

    def as_dict(self) -> dict:
        """JSON-ready mapping of the report (rows reconciled)."""
        return {
            "backend": self.backend,
            "wall_s": self.wall_s,
            "digest": self.digest,
            "rows": self.rows(),
        }


def profile_fleet_run(config, scenario=None, backend: str = "reference"):
    """Run one fleet with a profiled ``backend``; returns a report.

    ``config.backend`` is stripped (the profiled scope must win over the
    orchestrator's own ``use_backend(config.backend)`` wrapper) and the
    whole run is traced so primitive counts come from the same run the
    wall times do.
    """
    from ..fleet import run_fleet

    config = dataclasses.replace(config, backend=None)
    with profiled_backend(base=backend) as profiler:
        with trace_mod.trace(f"profile:{backend}") as cost:
            t0 = time.perf_counter()
            result = run_fleet(config, scenario=scenario)
            wall_s = time.perf_counter() - t0
    return ProfileReport(
        backend=backend,
        wall_s=wall_s,
        digest=result.stats.digest(),
        timings={k: dict(v) for k, v in profiler.timings.items()},
        trace_counts=cost.as_dict(),
    )


def speedup_table(reference: ProfileReport, accelerated: ProfileReport):
    """Fold two profiles into per-primitive speedup rows.

    Both runs must be the same deterministic workload: digests and
    trace counts are required to match exactly (that *is* the
    bit-parity contract the seam promises), otherwise the comparison
    would be between different work.
    """
    if reference.digest != accelerated.digest:
        raise ObsError(
            "profiled runs diverged: digest"
            f" {reference.digest[:16]} != {accelerated.digest[:16]}"
        )
    if reference.trace_counts != accelerated.trace_counts:
        raise ObsError(
            "profiled runs diverged: trace counts differ between"
            " backends"
        )
    rows = []
    acc_by_event = {row["event"]: row for row in accelerated.rows()}
    for ref_row in reference.rows():
        acc_row = acc_by_event[ref_row["event"]]
        ref_ns, acc_ns = ref_row["wall_ns"], acc_row["wall_ns"]
        rows.append(
            {
                "event": ref_row["event"],
                "trace_count": ref_row["trace_count"],
                "reference_ms": ref_ns / 1e6,
                "accelerated_ms": acc_ns / 1e6,
                "speedup": (ref_ns / acc_ns) if acc_ns else None,
            }
        )
    return {
        "rows": rows,
        "reference_wall_s": reference.wall_s,
        "accelerated_wall_s": accelerated.wall_s,
        "digest": reference.digest,
    }


def render_speedup_table(table: dict) -> str:
    """Plain-text rendering of :func:`speedup_table` output."""
    lines = [
        f"{'primitive':<14} {'trace count':>12} {'reference ms':>13}"
        f" {'accel ms':>10} {'speedup':>8}",
    ]
    for row in table["rows"]:
        speedup = (
            f"{row['speedup']:.1f}x" if row["speedup"] is not None else "—"
        )
        lines.append(
            f"{row['event']:<14} {row['trace_count']:>12}"
            f" {row['reference_ms']:>13.2f}"
            f" {row['accelerated_ms']:>10.2f} {speedup:>8}"
        )
    return "\n".join(lines)
