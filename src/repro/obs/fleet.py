"""Lifecycle hooks connecting the fleet orchestrator to an Observer.

The orchestrator calls one hook per lifecycle event, always guarded by
``if self._hooks is not None`` — when no observer is attached not a
single instruction beyond that check runs (the ``CostTrace``
zero-overhead contract).

Digest-neutrality rules every hook obeys:

* **read-only** — hooks never mutate orchestrator, shard or vehicle
  state, never draw from any DRBG, and never schedule simulator events
  (an extra event would renumber the heap's tie-breaking sequence and
  change the ordering of simultaneous events);
* **sim-time only** — every span timestamp is ``sim.now`` or a value
  the orchestrator already computed (batch service windows); wall-clock
  only ever appears inside the clearly-marked ``wall`` annotations the
  deterministic views strip;
* **synchronous heartbeats** — progress beats are emitted from inside
  record/done hooks when sim-time crosses the next boundary, *not* from
  scheduled timers, for the same heap-sequence reason.
"""

from __future__ import annotations

__all__ = ["FleetInstrumentation"]


class FleetInstrumentation:
    """Tracks span ids per fleet entity and feeds the observer.

    One instance per orchestrator run.  Span bookkeeping is keyed by
    vehicle index / shard index / V2V pair, mirroring the orchestrator's
    own single-flight invariants (one establishment, one migration, one
    re-enrollment in flight per vehicle at a time).
    """

    def __init__(self, observer) -> None:
        self.obs = observer
        self._run_span: int | None = None
        self._shard_spans: dict = {}
        self._vehicle_spans: dict = {}
        self._enroll_spans: dict = {}
        self._establish_spans: dict = {}
        self._migrate_spans: dict = {}
        self._re_enroll_spans: dict = {}
        self._v2v_spans: dict = {}
        self._vehicles_done = 0
        self._records = 0
        self._next_beat_ms = 0.0

    # -- run lifecycle ------------------------------------------------------

    def run_started(self, orch) -> None:
        """Open the run span and one span per gateway shard."""
        spans = self.obs.spans
        self._run_span = spans.begin(
            "fleet",
            "run",
            orch.sim.now,
            n_vehicles=orch.config.n_vehicles,
            shards=orch.config.shards,
            scenario=(
                orch.scenario.name if orch.scenario is not None else ""
            ),
        )
        for shard in orch.shards:
            self._shard_spans[shard.index] = spans.begin(
                f"shard{shard.index}",
                "shard",
                orch.sim.now,
                parent=self._run_span,
                shard=shard.index,
            )

    def run_finished(self, orch, stats) -> None:
        """Close shard + run spans, final heartbeat, injection tallies, meta."""
        spans = self.obs.spans
        now = orch.sim.now
        for shard in orch.shards:
            spans.end(
                self._shard_spans.pop(shard.index),
                now,
                enrollments=shard.enrollments,
                sessions=shard.sessions_established,
                batches=shard.batches,
            )
        spans.end(self._run_span, now)
        self._run_span = None
        self._heartbeat(orch)  # final beat, always emitted
        metrics = self.obs.metrics
        for inj in stats.injection_stats:
            metrics.counter(
                "fleet.injection_attempts", kind=inj.kind
            ).inc(inj.attempts)
            metrics.counter(
                "fleet.injection_rejected", kind=inj.kind
            ).inc(inj.rejected)
            metrics.counter(
                "fleet.injection_succeeded", kind=inj.kind
            ).inc(inj.succeeded)
        self.obs.meta.update(
            {
                "run": (
                    orch.scenario.name
                    if orch.scenario is not None
                    else "fleet"
                ),
                "sim_end_ms": now,
                "backend": orch.config.backend,
                "n_vehicles": orch.config.n_vehicles,
                "shards": orch.config.shards,
                "digest": stats.digest(),
            }
        )

    def partition_finished(self, orch) -> None:
        """Close shard + run spans for one worker *partition* run.

        The process-parallel path (:mod:`repro.fleet.parallel`) ends a
        worker's telemetry here instead of :meth:`run_finished`: the
        worker has no merged :class:`~repro.fleet.stats.FleetStats`, so
        injection counters and the run meta are emitted by the *parent*
        from the merged result.  Spans stay worker-local.
        """
        spans = self.obs.spans
        now = orch.sim.now
        for shard in orch.shards:
            spans.end(
                self._shard_spans.pop(shard.index),
                now,
                enrollments=shard.enrollments,
                sessions=shard.sessions_established,
                batches=shard.batches,
            )
        spans.end(self._run_span, now)
        self._run_span = None
        self._heartbeat(orch)  # final worker beat, always emitted

    # -- enrollment ---------------------------------------------------------

    def vehicle_arrived(self, orch, vehicle) -> None:
        """Open the vehicle lifecycle + enrollment spans."""
        spans = self.obs.spans
        parent = spans.begin(
            vehicle.name,
            "vehicle",
            orch.sim.now,
            parent=self._run_span,
            vehicle=vehicle.index,
        )
        self._vehicle_spans[vehicle.index] = parent
        self._enroll_spans[vehicle.index] = spans.begin(
            f"{vehicle.name}:enroll",
            "enroll",
            orch.sim.now,
            parent=parent,
            vehicle=vehicle.index,
        )
        self.obs.metrics.counter("fleet.arrivals").inc()

    def vehicle_enrolled(self, orch, vehicle, latency_ms) -> None:
        """Close the enrollment span; count + time the enrollment."""
        self.obs.spans.end(
            self._enroll_spans.pop(vehicle.index),
            orch.sim.now,
            shard=vehicle.shard,
        )
        self.obs.metrics.counter(
            "fleet.enrollments", shard=vehicle.shard
        ).inc()
        self.obs.metrics.histogram(
            "fleet.enrollment_latency_ms", shard=vehicle.shard
        ).observe(latency_ms)

    def ca_batch(
        self, orch, shard, batch_size, attacks, start_ms, end_ms
    ) -> None:
        """Record one CA issuance batch span + its counters."""
        spans = self.obs.spans
        span_id = spans.begin(
            f"shard{shard.index}:issue",
            "ca-batch",
            start_ms,
            parent=self._shard_spans.get(shard.index),
            shard=shard.index,
            batch=batch_size,
            attacks=attacks,
        )
        spans.end(span_id, end_ms)
        metrics = self.obs.metrics
        metrics.counter("fleet.ca_batches", shard=shard.index).inc()
        metrics.counter(
            "fleet.ca_batched_requests", shard=shard.index
        ).inc(batch_size)
        metrics.gauge("fleet.ca_max_batch", shard=shard.index).record(
            batch_size
        )
        metrics.histogram(
            "fleet.ca_batch_service_ms", shard=shard.index
        ).observe(end_ms - start_ms)

    def queue_wait(self, orch, shard, wait_ms) -> None:
        """Record one legit request's CA queue wait."""
        self.obs.metrics.histogram(
            "fleet.ca_queue_wait_ms", shard=shard.index
        ).observe(wait_ms)

    # -- sessions -----------------------------------------------------------

    def establish_started(self, orch, vehicle, shard) -> None:
        """Open the session-establishment span."""
        self._establish_spans[vehicle.index] = self.obs.spans.begin(
            f"{vehicle.name}:establish",
            "establish",
            orch.sim.now,
            parent=self._vehicle_spans.get(vehicle.index),
            vehicle=vehicle.index,
            shard=shard.index,
        )

    def establish_finished(
        self, orch, vehicle, shard, latency_ms, generation
    ) -> None:
        """Close the establishment span; count + time the session."""
        self.obs.spans.end(
            self._establish_spans.pop(vehicle.index),
            orch.sim.now,
            generation=generation,
        )
        metrics = self.obs.metrics
        metrics.counter("fleet.sessions", shard=shard.index).inc()
        metrics.histogram(
            "fleet.establishment_latency_ms", shard=shard.index
        ).observe(latency_ms)

    def rekey(self, orch, vehicle, shard) -> None:
        """Mark a re-key event and count it."""
        self.obs.spans.event(
            f"{vehicle.name}:rekey",
            "rekey",
            orch.sim.now,
            parent=self._vehicle_spans.get(vehicle.index),
            vehicle=vehicle.index,
            shard=shard.index,
            records=vehicle.records_sent,
        )
        self.obs.metrics.counter("fleet.rekeys", shard=shard.index).inc()

    def record_sent(self, orch, vehicle, shard, record_bytes) -> None:
        """Count one application record (and maybe heartbeat)."""
        metrics = self.obs.metrics
        metrics.counter("fleet.records_sent", shard=shard.index).inc()
        metrics.counter("fleet.record_bytes", shard=shard.index).inc(
            record_bytes
        )
        self._records += 1
        self._maybe_heartbeat(orch)

    def vehicle_done(self, orch, vehicle) -> None:
        """Close the vehicle lifecycle span; heartbeat."""
        self.obs.spans.end(
            self._vehicle_spans[vehicle.index],
            orch.sim.now,
            records=vehicle.records_sent,
        )
        self.obs.metrics.counter("fleet.vehicles_done").inc()
        self._vehicles_done += 1
        self._maybe_heartbeat(orch)

    # -- failover / churn ---------------------------------------------------

    def shard_failed(self, orch, shard, requeued) -> None:
        """Mark the failover event and count requeued vehicles."""
        self.obs.spans.event(
            f"shard{shard.index}:failed",
            "failover",
            orch.sim.now,
            parent=self._shard_spans.get(shard.index),
            shard=shard.index,
            requeued=requeued,
        )
        self.obs.metrics.counter(
            "fleet.shard_failures", shard=shard.index
        ).inc()

    def handover(self, orch, vehicle, old_shard, new_shard) -> None:
        """Count one failover handover."""
        self.obs.spans.event(
            f"{vehicle.name}:handover",
            "failover",
            orch.sim.now,
            parent=self._vehicle_spans.get(vehicle.index),
            vehicle=vehicle.index,
            from_shard=old_shard.index,
            to_shard=new_shard.index,
        )
        self.obs.metrics.counter("fleet.handovers").inc()

    def rejoin(self, orch, shard) -> None:
        """Mark the shard-rejoin event and count it."""
        self.obs.spans.event(
            f"shard{shard.index}:rejoin",
            "rejoin",
            orch.sim.now,
            parent=self._shard_spans.get(shard.index),
            shard=shard.index,
        )
        self.obs.metrics.counter(
            "fleet.rejoins", shard=shard.index
        ).inc()

    def migrate_started(self, orch, vehicle, old_shard, target) -> None:
        """Open the live-migration span; tally the per-shard flow."""
        self._migrate_spans[vehicle.index] = self.obs.spans.begin(
            f"{vehicle.name}:migrate",
            "migrate",
            orch.sim.now,
            parent=self._vehicle_spans.get(vehicle.index),
            vehicle=vehicle.index,
            from_shard=old_shard.index,
            to_shard=target.index,
        )
        # Per-shard flow accounting: tracelint's shard-conservation
        # rule checks Σ migrations_in == Σ migrations_out (== the
        # run-level fleet.migrations counter).
        metrics = self.obs.metrics
        metrics.counter(
            "fleet.migrations_out", shard=old_shard.index
        ).inc()
        metrics.counter(
            "fleet.migrations_in", shard=target.index
        ).inc()

    def migrate_finished(self, orch, vehicle, latency_ms) -> None:
        """Close the migration span; count + time it."""
        self.obs.spans.end(
            self._migrate_spans.pop(vehicle.index), orch.sim.now
        )
        metrics = self.obs.metrics
        metrics.counter("fleet.migrations").inc()
        metrics.histogram("fleet.migration_latency_ms").observe(latency_ms)

    def re_enroll_started(self, orch, vehicle, shard, reason) -> None:
        """Open the re-enrollment span."""
        self._re_enroll_spans[vehicle.index] = self.obs.spans.begin(
            f"{vehicle.name}:re-enroll",
            "re-enroll",
            orch.sim.now,
            parent=self._vehicle_spans.get(vehicle.index),
            vehicle=vehicle.index,
            shard=shard.index,
            reason=reason,
        )

    def re_enroll_finished(self, orch, vehicle) -> None:
        """Close the re-enrollment span and count it."""
        self.obs.spans.end(
            self._re_enroll_spans.pop(vehicle.index), orch.sim.now
        )
        self.obs.metrics.counter("fleet.re_enrollments").inc()

    def re_enroll_coalesced(self, orch, vehicle) -> None:
        """Count a re-enrollment coalesced into one in flight."""
        self.obs.metrics.counter("fleet.re_enrollments_coalesced").inc()

    # -- policy decisions ----------------------------------------------------

    def policy_decision(
        self, now_ms, point, rule, vehicle_index, target_shard
    ) -> None:
        """Mark one policy-engine decision and count it per rule.

        Called from inside :meth:`repro.fleet.policy.PolicyEngine.decide`
        (and from the manual :meth:`~repro.fleet.orchestrator
        .FleetOrchestrator.migrate` API path, attributed to the pseudo
        rule ``"api"``), so the signature carries the already-snapshotted
        values rather than an orchestrator reference.  Tracelint's
        policy-balance rule checks these counters against the action
        counters they must equal (``policy.migrate`` decisions ==
        migrations in, ``policy.rekey`` decisions == re-keys).
        """
        attrs = {"vehicle": vehicle_index, "rule": rule}
        if target_shard is not None:
            attrs["to_shard"] = target_shard
        self.obs.spans.event(
            f"veh{vehicle_index:04d}:policy:{point}",
            "policy",
            now_ms,
            parent=self._vehicle_spans.get(vehicle_index),
            **attrs,
        )
        self.obs.metrics.counter(f"policy.{point}", rule=rule).inc()

    # -- V2V ----------------------------------------------------------------

    def v2v_started(self, orch, initiator, responder, rekey) -> None:
        """Open a V2V establishment span (parented to the run)."""
        pair = (initiator.index, responder.index)
        # Parented to the run, not a vehicle: a V2V session outlives the
        # gateway lifecycle span of either endpoint.
        self._v2v_spans[pair] = self.obs.spans.begin(
            f"{initiator.name}<->{responder.name}:v2v",
            "v2v",
            orch.sim.now,
            parent=self._run_span,
            initiator=initiator.index,
            responder=responder.index,
            rekey=rekey,
        )

    def v2v_finished(
        self, orch, initiator, responder, latency_ms, cross_shard
    ) -> None:
        """Close the V2V span; count + time the session."""
        pair = (initiator.index, responder.index)
        self.obs.spans.end(
            self._v2v_spans.pop(pair),
            orch.sim.now,
            cross_shard=cross_shard,
        )
        metrics = self.obs.metrics
        metrics.counter("fleet.v2v_sessions").inc()
        metrics.histogram("fleet.v2v_latency_ms").observe(latency_ms)
        if cross_shard:
            metrics.counter("fleet.v2v_cross_shard").inc()

    def v2v_record(self, orch, initiator, responder) -> None:
        """Count one V2V application record."""
        self.obs.metrics.counter("fleet.v2v_records_sent").inc()

    # -- adversarial injections ---------------------------------------------

    def injection_ran(self, orch, index, kind, log) -> None:
        # Span event only: CA-flood rejections are tallied later, when
        # the flooded queue drains through _pump_ca, so the final
        # per-kind counters come from InjectionStats in run_finished.
        """Mark an adversarial injection dispatch event."""
        self.obs.spans.event(
            f"injection{index}:{kind}",
            "injection",
            orch.sim.now,
            parent=self._run_span,
            kind=kind,
            attempts=log["attempts"],
            rejected=log["rejected"],
            succeeded=log["succeeded"],
        )

    # -- heartbeats ---------------------------------------------------------

    def _maybe_heartbeat(self, orch) -> None:
        """Emit a beat when sim-time crossed the next boundary.

        Called synchronously from record/done hooks — never scheduled —
        so the simulator's event-sequence numbering (and with it every
        golden digest) is untouched.
        """
        if orch.sim.now < self._next_beat_ms:
            return
        self._heartbeat(orch)
        self._next_beat_ms = orch.sim.now + self.obs.heartbeat_interval_ms

    def _heartbeat(self, orch) -> None:
        self.obs.heartbeat(
            sim_ms=orch.sim.now,
            vehicles_done=self._vehicles_done,
            vehicles_total=orch.config.n_vehicles,
            records_sent=self._records,
        )
