"""Hierarchical digest trees over the deterministic event stream.

The reproduction's headline guarantee — bit-identical stats digests
across backends, streaming modes and worker counts — is binary: two
digests either match or they do not.  This module turns the
deterministic event stream :mod:`repro.obs` records into a *localizable*
form: a Merkle-style hierarchy

    run ── shard:N ──────── span / metric leaves
        ├─ veh:XXxxxxxx ─── veh:XXXXxxxx ─ … ─ vehicle spans
        ├─ metrics ───────── unlabeled metric leaves
        ├─ heartbeats ────── beat:XXxxxxxx ─ … ─ beat leaves
        ├─ spans ─────────── run-level span leaves (v2v, injections)
        └─ meta

where every leaf digest is the SHA-256 of one event's canonical JSON
(with the non-deterministic ``wall`` annotations stripped) and every
internal node digest is the SHA-256 of its children's ``(name, digest)``
pairs in sorted order.  Two runs agree at the root iff they agree on
every event; when they do not, walking the two trees top-down finds the
first diverging leaf in a number of node comparisons bounded by
``fanout x depth`` — *independent of the number of events* — because
unbounded populations (vehicles, heartbeats, run-level spans) are
bucketed into a fixed-fanout radix trie on their zero-padded ids
(``veh:00xxxxxx -> veh:0012xxxx -> veh:001234xx -> veh:00123456``).

Three construction paths, one structure:

* **incrementally** — :class:`DigestTreeBuilder.add_event` accepts one
  event at a time (the observer hook sites feed it as events are
  produced);
* **from a run** — :meth:`DigestTree.from_observer` /
  :meth:`DigestTree.from_events` over
  :meth:`repro.obs.Observer.deterministic_events`;
* **offline** — :meth:`DigestTree.from_events` over a JSONL archive
  loaded with :func:`repro.obs.read_jsonl`.

Split/merge law, matching :meth:`repro.obs.MetricsRegistry.absorb`:
:meth:`DigestTree.merge` unions span/heartbeat leaves (which are
disjoint across a partition — span ids never collide) and *folds*
metric leaves with the metric merge laws (counters add, gauges max,
histograms merge exactly), then recomputes every digest bottom-up.
That makes ``merge ≡ recomputation`` a theorem the parallel
orchestrator can check: each :class:`~repro.fleet.parallel.WorkerSnapshot`
ships its metric-plane subtree root, and the parent proves that folding
the worker subtrees produces exactly the tree recomputed from its
absorbed registry (``tests/fleet/test_divergence_parallel.py``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..errors import ObsError
from .metrics import merge_metric_events

__all__ = [
    "DigestTree",
    "DigestTreeBuilder",
    "TREE_SECTIONS",
    "TreeNode",
    "event_tree_path",
]

#: Top-level tree sections, keyed by the event types they hold.  Pass a
#: subset as ``include=`` to build a plane-restricted tree (the CI
#: diff-parity step compares workers=2 vs workers=1 runs on the
#: ``metrics`` plane, which the parallel merge laws make bit-identical,
#: while spans and heartbeats stay worker-local by design).
TREE_SECTIONS = ("spans", "metrics", "heartbeats", "meta")

_SECTION_BY_TYPE = {
    "span": "spans",
    "counter": "metrics",
    "gauge": "metrics",
    "histogram": "metrics",
    "heartbeat": "heartbeats",
    "meta": "meta",
}

#: Radix-bucket geometry: ids are zero-padded to ``_ID_WIDTH`` digits
#: and grouped ``_ID_GROUP`` digits per trie level, so every bucket has
#: at most ``10 ** _ID_GROUP`` children regardless of population.
_ID_WIDTH = 8
_ID_GROUP = 2


def _strip_wall(event: dict) -> dict:
    """The event without its non-deterministic ``wall`` annotation."""
    if "wall" in event:
        return {key: value for key, value in event.items() if key != "wall"}
    return event


def _radix(prefix: str, number: int) -> tuple[str, ...]:
    """Radix-trie path for ``prefix``-kind id ``number``.

    Returns the bucket names (coarse to fine) followed by the leaf name;
    buckets share high-order digit prefixes, so ``_radix("veh", 1234)``
    is ``("veh:00xxxxxx", "veh:0000xxxx", "veh:000012xx",
    "veh:00001234")`` and every bucket has at most ``10 ** _ID_GROUP``
    children no matter how many ids the run produced.
    """
    digits = f"{int(number):0{_ID_WIDTH}d}"
    if len(digits) > _ID_WIDTH:
        # Ids beyond the padded width still bucket deterministically —
        # they all share the overflow buckets of their own length.
        digits = digits.zfill(len(digits))
    levels = []
    for cut in range(_ID_GROUP, len(digits), _ID_GROUP):
        levels.append(f"{prefix}:{digits[:cut]}{'x' * (len(digits) - cut)}")
    levels.append(f"{prefix}:{digits}")
    return tuple(levels)


def _label_text(labels: dict, skip: tuple = ()) -> str:
    parts = [
        f"{key}={labels[key]}"
        for key in sorted(labels)
        if key not in skip
    ]
    return ",".join(parts)


def _span_leaf(event: dict) -> str:
    return f"span:{event.get('cat', '?')}:{int(event['id']):0{_ID_WIDTH}d}"


def event_tree_path(event: dict, heartbeat_seq: int = 0) -> tuple:
    """The tree path (section-first) one deterministic event lives at.

    Placement rules, mirroring the fleet instrumentation's hierarchy:

    * spans with a ``vehicle`` attribute hang off that vehicle's radix
      node; with only a ``shard`` attribute off that shard's node;
      otherwise off the run-level ``spans`` trie (keyed by span id);
    * metric events with a ``shard`` label live under that shard's
      ``metrics`` child, everything else under the top-level
      ``metrics`` node;
    * heartbeats are keyed by stream order (``heartbeat_seq``), the
      only stable identity they have;
    * the ``meta`` event is a single leaf.

    Vehicles hang directly off the root rather than under a shard node:
    migration makes shard residency time-varying, so a vehicle has no
    unique home shard to nest under.
    """
    kind = event.get("type")
    section = _SECTION_BY_TYPE.get(kind)
    if section is None:
        raise ObsError(
            f"cannot place event of unknown type {kind!r} in the tree"
        )
    if kind == "span":
        attrs = event.get("attrs", {})
        if "vehicle" in attrs:
            return (*_radix("veh", attrs["vehicle"]), _span_leaf(event))
        if "shard" in attrs:
            return (f"shard:{int(attrs['shard'])}", _span_leaf(event))
        return ("spans", *_radix("span", event["id"]))
    if section == "metrics":
        labels = event.get("labels", {})
        leaf = f"{kind}:{event['name']}"
        text = _label_text(labels)
        if text:
            leaf = f"{leaf}|{text}"
        if "shard" in labels:
            return (f"shard:{int(labels['shard'])}", "metrics", leaf)
        return ("metrics", leaf)
    if kind == "heartbeat":
        return ("heartbeats", *_radix("beat", heartbeat_seq))
    return ("meta", "meta")


def _leaf_digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(b"leaf\0" + canonical.encode()).hexdigest()


def _node_digest(children: dict) -> str:
    material = "\n".join(
        f"{name}\t{children[name].digest}" for name in sorted(children)
    )
    return hashlib.sha256(b"node\0" + material.encode()).hexdigest()


@dataclass(frozen=True)
class TreeNode:
    """One node of a digest tree.

    Leaves carry the (wall-stripped) event ``payload`` and the 1-based
    archive ``lines`` it came from; internal nodes carry ``children``.
    ``leaf_count`` is the number of leaves in the subtree, so a walk can
    report how much evidence sits under any digest.
    """

    name: str
    digest: str
    children: dict = field(default_factory=dict)
    payload: dict | None = None
    lines: tuple = ()
    leaf_count: int = 1

    @property
    def is_leaf(self) -> bool:
        """True when this node carries an event payload (no children)."""
        return self.payload is not None

    def as_dict(self) -> dict:
        """JSON-ready recursive rendering (children in sorted order)."""
        out = {"name": self.name, "digest": self.digest,
               "leaves": self.leaf_count}
        if self.is_leaf:
            out["payload"] = self.payload
            if self.lines:
                out["lines"] = list(self.lines)
        else:
            out["children"] = [
                self.children[name].as_dict()
                for name in sorted(self.children)
            ]
        return out


class DigestTreeBuilder:
    """Incremental digest-tree construction, one event at a time.

    The builder is the single construction path — the batch classmethods
    on :class:`DigestTree` are loops over :meth:`add_event` — so the
    incremental and offline trees are structurally identical by
    construction.

    Args:
        include: optional subset of :data:`TREE_SECTIONS`; events whose
            section is excluded are counted (for line numbers) but not
            inserted.
    """

    def __init__(self, include=None) -> None:
        if include is not None:
            include = frozenset(include)
            unknown = include - frozenset(TREE_SECTIONS)
            if unknown:
                raise ObsError(
                    f"unknown tree sections {sorted(unknown)}"
                    f" (known: {list(TREE_SECTIONS)})"
                )
        self.include = include
        self._leaves: dict[tuple, dict] = {}
        self._lines: dict[tuple, tuple] = {}
        self._events = 0
        self._heartbeats = 0

    def add_event(self, event: dict, line: int | None = None) -> None:
        """Insert one deterministic event (``line`` is 1-based).

        Span/heartbeat/meta leaves must be unique; a duplicate path
        raises :class:`ObsError`.  Metric leaves *fold* under the metric
        merge laws (counters add, gauges max, histograms merge exactly),
        which is what makes :meth:`DigestTree.merge` agree with
        :meth:`repro.obs.MetricsRegistry.absorb`.
        """
        self._events += 1
        if line is None:
            line = self._events
        kind = event.get("type")
        section = _SECTION_BY_TYPE.get(kind)
        if section is None:
            raise ObsError(
                f"line {line}: cannot add event of unknown type {kind!r}"
            )
        seq = self._heartbeats
        if kind == "heartbeat":
            self._heartbeats += 1
        if self.include is not None and section not in self.include:
            return
        path = event_tree_path(event, heartbeat_seq=seq)
        payload = _strip_wall(event)
        if path in self._leaves:
            if section != "metrics":
                raise ObsError(
                    f"line {line}: duplicate tree leaf at"
                    f" {'/'.join(path)}"
                )
            payload = merge_metric_events(self._leaves[path], payload)
            self._lines[path] = (*self._lines[path], line)
        else:
            self._lines[path] = (line,)
        self._leaves[path] = payload

    def add_events(self, events) -> "DigestTreeBuilder":
        """Insert an iterable of events (lines numbered from 1)."""
        for event in events:
            self.add_event(event)
        return self

    def build(self) -> "DigestTree":
        """Freeze the accumulated leaves into a hashed tree."""
        return DigestTree(_assemble("run", self._leaves, self._lines))


def _assemble(name: str, leaves: dict, lines: dict) -> TreeNode:
    """Nest flat ``{path: payload}`` leaves into a hashed node tree."""
    groups: dict[str, dict] = {}
    group_lines: dict[str, dict] = {}
    for path, payload in leaves.items():
        head, rest = path[0], path[1:]
        if rest:
            groups.setdefault(head, {})[rest] = payload
            group_lines.setdefault(head, {})[rest] = lines[path]
        else:
            if head in groups and isinstance(
                next(iter(groups[head])), tuple
            ):  # pragma: no cover - paths are fixed-depth per section
                raise ObsError(f"leaf/branch collision at {head!r}")
            groups[head] = payload
            group_lines[head] = lines[path]
    children: dict[str, TreeNode] = {}
    for child_name, content in groups.items():
        if isinstance(content, dict) and content and all(
            isinstance(key, tuple) for key in content
        ):
            children[child_name] = _assemble(
                child_name, content, group_lines[child_name]
            )
        else:
            children[child_name] = TreeNode(
                name=child_name,
                digest=_leaf_digest(content),
                payload=content,
                lines=tuple(group_lines[child_name]),
            )
    return TreeNode(
        name=name,
        digest=_node_digest(children),
        children=children,
        leaf_count=sum(child.leaf_count for child in children.values()),
    )


class DigestTree:
    """A frozen, hashed hierarchy over one run's deterministic events."""

    def __init__(self, root: TreeNode) -> None:
        self.root = root

    @property
    def root_digest(self) -> str:
        """The run-level Merkle root; equal iff every leaf is equal."""
        return self.root.digest

    @property
    def leaf_count(self) -> int:
        """Number of event leaves in the whole tree."""
        return self.root.leaf_count

    # -- construction -------------------------------------------------------

    @classmethod
    def from_events(cls, events, include=None) -> "DigestTree":
        """Build from an event list (a loaded JSONL archive, usually)."""
        return DigestTreeBuilder(include=include).add_events(events).build()

    @classmethod
    def from_observer(cls, observer, include=None) -> "DigestTree":
        """Build from a live observer's deterministic event stream."""
        return cls.from_events(
            observer.deterministic_events(), include=include
        )

    @classmethod
    def from_metrics(cls, snapshot) -> "DigestTree":
        """The metric-plane tree of one :class:`MetricsSnapshot`.

        This is the subtree each parallel worker ships: metric leaves
        only, so the parent's fold of worker subtrees must equal the
        tree recomputed from its absorbed registry.
        """
        return cls.from_events(snapshot.events(), include=("metrics",))

    # -- navigation ---------------------------------------------------------

    def node(self, path) -> TreeNode:
        """The node at ``path`` (a tuple of child names from the root)."""
        node = self.root
        for name in path:
            if name not in node.children:
                raise ObsError(
                    f"no tree node at {'/'.join(path)}:"
                    f" {name!r} not under {node.name!r}"
                )
            node = node.children[name]
        return node

    def leaves(self) -> dict:
        """Flat ``{path: payload}`` view of every leaf."""
        out: dict[tuple, dict] = {}

        def walk(node: TreeNode, prefix: tuple) -> None:
            if node.is_leaf:
                out[prefix] = node.payload
                return
            for name in sorted(node.children):
                walk(node.children[name], (*prefix, name))

        walk(self.root, ())
        return out

    def as_dict(self) -> dict:
        """JSON-ready recursive rendering of the whole tree."""
        return self.root.as_dict()

    # -- algebra ------------------------------------------------------------

    def merge(self, *others: "DigestTree") -> "DigestTree":
        """Fold trees under the split/merge law; digests recomputed.

        Span, heartbeat and meta leaves must be disjoint across the
        operands (a collision means the operands were not a partition
        of one run and raises :class:`ObsError`); metric leaves fold
        with the metric merge laws.  The result is *recomputed* bottom
        up — ``merge(parts).root_digest == from_events(whole).root_digest``
        whenever the parts partition the whole, which is the law the
        property suite drives and the parallel orchestrator asserts.
        """
        leaves: dict[tuple, dict] = {}
        for tree in (self, *others):
            for path, payload in tree.leaves().items():
                if path not in leaves:
                    leaves[path] = payload
                elif payload.get("type") in ("counter", "gauge",
                                             "histogram"):
                    leaves[path] = merge_metric_events(
                        leaves[path], payload
                    )
                else:
                    raise ObsError(
                        "merge collision on non-metric leaf"
                        f" {'/'.join(path)} — operands are not a"
                        " partition of one run"
                    )
        lines = {path: () for path in leaves}
        return DigestTree(_assemble("run", leaves, lines))
