"""Labeled, mergeable fleet metrics: counters, gauges, histograms.

The future process-parallel orchestrator will run shards in worker
processes and fold their telemetry back together, exactly the way
``ShardStats.merge`` already folds per-shard aggregates.  That forces
one law onto everything in this module:

    **snapshot merge is order-independent and associative.**

``merge(a, merge(b, c)) == merge(merge(a, b), c)`` and any permutation
of the operands produces the *same* snapshot, bit for bit.  Integers
(counts, bucket tallies) satisfy this trivially; floating-point sums do
**not** (float addition is not associative), so histogram sums
accumulate in exact arithmetic (:class:`fractions.Fraction` — every
float is exactly representable) and only convert to float at export
time.  Gauges here are *high-watermark* gauges (peak RSS, deepest CA
queue, largest issuance batch): ``merge`` takes the max, which is
commutative and associative, unlike last-writer-wins.

The hypothesis suite (``tests/obs/test_obs_properties.py``) drives the
law over random instrument programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..errors import ObsError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_metric_events",
]

#: Default histogram bucket upper bounds (milliseconds); the implicit
#: final bucket is ``+inf``.  Roughly logarithmic, chosen to resolve
#: both bus-level microbursts and multi-second enrollment storms.
DEFAULT_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 30_000.0, 60_000.0,
)


def _label_key(labels: dict) -> tuple:
    """Canonical hashable form of a label set (sorted, values as str)."""
    return tuple((str(k), str(v)) for k, v in sorted(labels.items()))


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (a non-negative integer) to the counter."""
        if not isinstance(n, int) or n < 0:
            raise ObsError(f"counter increments must be ints >= 0, got {n!r}")
        self.value += n


class Gauge:
    """A high-watermark gauge: records the maximum value observed.

    Max semantics (not last-writer-wins) keep snapshot merging
    order-independent; use it for peaks — RSS, queue depth, batch size.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def record(self, value: float) -> None:
        """Raise the watermark to ``value`` if it is higher."""
        value = float(value)
        if self.value is None or value > self.value:
            self.value = value


class Histogram:
    """A fixed-bucket histogram with an exact (Fraction) running sum."""

    __slots__ = ("bounds", "bucket_counts", "count", "_sum", "min", "max")

    def __init__(self, bounds: tuple = DEFAULT_BUCKETS_MS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ObsError(
                f"histogram bounds must be strictly increasing: {bounds}"
            )
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self._sum = Fraction(0)
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self._sum += Fraction(value)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def absorb(self, snap: "HistogramSnapshot") -> None:
        """Fold a frozen snapshot into this live histogram.

        Exact (the sums are Fractions) and order-independent, so
        absorbing worker snapshots in any order yields the same state
        as the merge-law composition of their snapshots.
        """
        if snap.bounds != self.bounds:
            raise ObsError(
                "cannot absorb a histogram with different bucket bounds:"
                f" {self.bounds} != {snap.bounds}"
            )
        self.count += snap.count
        self._sum += snap.sum_exact
        if snap.min is not None and (self.min is None or snap.min < self.min):
            self.min = snap.min
        if snap.max is not None and (self.max is None or snap.max > self.max):
            self.max = snap.max
        for index, tally in enumerate(snap.bucket_counts):
            self.bucket_counts[index] += tally

    def snapshot(self) -> "HistogramSnapshot":
        """Immutable snapshot of the current state."""
        return HistogramSnapshot(
            count=self.count,
            sum_exact=self._sum,
            min=self.min,
            max=self.max,
            bounds=self.bounds,
            bucket_counts=tuple(self.bucket_counts),
        )


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen histogram state; merging is exact and associative."""

    count: int
    sum_exact: Fraction
    min: float | None
    max: float | None
    bounds: tuple
    bucket_counts: tuple

    @property
    def sum(self) -> float:
        """The sample sum as a float (exact internally, rounded once)."""
        return float(self.sum_exact)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 for an empty histogram)."""
        if self.count == 0:
            return 0.0
        return float(self.sum_exact / self.count)

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Fold two snapshots; bucket geometry must match."""
        if self.bounds != other.bounds:
            raise ObsError(
                "cannot merge histograms with different bucket bounds:"
                f" {self.bounds} != {other.bounds}"
            )
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        return HistogramSnapshot(
            count=self.count + other.count,
            sum_exact=self.sum_exact + other.sum_exact,
            min=min(mins) if mins else None,
            max=max(maxs) if maxs else None,
            bounds=self.bounds,
            bucket_counts=tuple(
                a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
            ),
        )

    def as_dict(self) -> dict:
        """JSON-ready mapping (the exact sum serialises as ``num/den``)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "sum_exact": [
                self.sum_exact.numerator,
                self.sum_exact.denominator,
            ],
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramSnapshot":
        """Rebuild a snapshot from its :meth:`as_dict` mapping."""
        numerator, denominator = data["sum_exact"]
        return cls(
            count=data["count"],
            sum_exact=Fraction(numerator, denominator),
            min=data["min"],
            max=data["max"],
            bounds=tuple(data["bounds"]),
            bucket_counts=tuple(data["buckets"]),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen view of a whole registry; the mergeable unit.

    Keys are ``(name, labels)`` pairs where ``labels`` is a sorted tuple
    of ``(key, value)`` string pairs.
    """

    counters: dict
    gauges: dict
    histograms: dict

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        """The merge identity."""
        return cls(counters={}, gauges={}, histograms={})

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Pointwise fold: counters add, gauges max, histograms merge."""
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        for key, value in other.gauges.items():
            gauges[key] = max(gauges[key], value) if key in gauges else value
        histograms = dict(self.histograms)
        for key, snap in other.histograms.items():
            histograms[key] = (
                histograms[key].merge(snap) if key in histograms else snap
            )
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def counter_total(self, name: str) -> int:
        """Sum of one counter across every label set."""
        return sum(
            value
            for (metric, _labels), value in self.counters.items()
            if metric == name
        )

    def events(self) -> list[dict]:
        """JSONL-ready metric events, deterministically ordered."""
        out = []
        for (name, labels) in sorted(self.counters):
            out.append(
                {
                    "type": "counter",
                    "name": name,
                    "labels": dict(labels),
                    "value": self.counters[(name, labels)],
                }
            )
        for (name, labels) in sorted(self.gauges):
            out.append(
                {
                    "type": "gauge",
                    "name": name,
                    "labels": dict(labels),
                    "value": self.gauges[(name, labels)],
                }
            )
        for (name, labels) in sorted(self.histograms):
            out.append(
                {
                    "type": "histogram",
                    "name": name,
                    "labels": dict(labels),
                    **self.histograms[(name, labels)].as_dict(),
                }
            )
        return out

    @classmethod
    def from_events(cls, events: list[dict]) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`events` output (JSONL import)."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for event in events:
            kind = event.get("type")
            if kind not in ("counter", "gauge", "histogram"):
                continue
            key = (event["name"], _label_key(event["labels"]))
            if kind == "counter":
                counters[key] = counters.get(key, 0) + event["value"]
            elif kind == "gauge":
                gauges[key] = (
                    max(gauges[key], event["value"])
                    if key in gauges
                    else event["value"]
                )
            else:
                snap = HistogramSnapshot.from_dict(event)
                histograms[key] = (
                    histograms[key].merge(snap) if key in histograms else snap
                )
        return cls(counters=counters, gauges=gauges, histograms=histograms)


def merge_metric_events(a: dict, b: dict) -> dict:
    """Fold two JSONL metric events for one instrument into one.

    The event-dict face of the snapshot merge laws — counters add,
    gauges take the max, histograms merge exactly — used by the digest
    tree (:mod:`repro.obs.tree`) to fold metric leaves so that tree
    merging agrees with :meth:`MetricsRegistry.absorb`.  Both events
    must describe the same instrument (type, name and labels).
    """
    kind = a.get("type")
    if (
        b.get("type") != kind
        or a.get("name") != b.get("name")
        or a.get("labels") != b.get("labels")
    ):
        raise ObsError(
            "cannot fold metric events for different instruments:"
            f" {a.get('type')}:{a.get('name')}:{a.get('labels')} !="
            f" {b.get('type')}:{b.get('name')}:{b.get('labels')}"
        )
    if kind == "counter":
        return {**a, "value": a["value"] + b["value"]}
    if kind == "gauge":
        return {**a, "value": max(a["value"], b["value"])}
    if kind == "histogram":
        merged = HistogramSnapshot.from_dict(a).merge(
            HistogramSnapshot.from_dict(b)
        )
        return {
            "type": "histogram",
            "name": a["name"],
            "labels": a["labels"],
            **merged.as_dict(),
        }
    raise ObsError(f"cannot fold events of non-metric type {kind!r}")


class MetricsRegistry:
    """Creates and caches labeled instruments; snapshots the whole set.

    Example::

        reg = MetricsRegistry()
        reg.counter("fleet.records_sent", shard=0).inc()
        reg.histogram("fleet.enrollment_latency_ms").observe(12.5)
        snap = reg.snapshot()
        snap.merge(MetricsSnapshot.empty()) == snap   # identity law
    """

    def __init__(self) -> None:
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._histogram_bounds: dict = {}

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under ``name`` + ``labels``."""
        key = (name, _label_key(labels))
        if key not in self._counters:
            self._counters[key] = Counter()
        return self._counters[key]

    def gauge(self, name: str, **labels) -> Gauge:
        """The high-watermark gauge under ``name`` + ``labels``."""
        key = (name, _label_key(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge()
        return self._gauges[key]

    def histogram(
        self, name: str, bounds: tuple | None = None, **labels
    ) -> Histogram:
        """The histogram under ``name`` + ``labels``.

        Bucket bounds are fixed per metric *name* at first creation so
        every label series of one metric stays mergeable.
        """
        key = (name, _label_key(labels))
        if key not in self._histograms:
            if name in self._histogram_bounds:
                fixed = self._histogram_bounds[name]
                if bounds is not None and tuple(bounds) != fixed:
                    raise ObsError(
                        f"histogram {name!r} already registered with"
                        f" bounds {fixed}"
                    )
                bounds = fixed
            else:
                bounds = (
                    tuple(bounds) if bounds is not None else DEFAULT_BUCKETS_MS
                )
                self._histogram_bounds[name] = bounds
            self._histograms[key] = Histogram(bounds)
        return self._histograms[key]

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a frozen snapshot into the live registry.

        The process-parallel orchestrator's barrier merge: each worker
        ships its registry as a :class:`MetricsSnapshot` and the parent
        absorbs them all.  Obeys the same laws as
        :meth:`MetricsSnapshot.merge` — counters add, gauges take the
        max, histograms fold exactly — so
        ``registry.snapshot()`` afterwards equals
        ``before.merge(snapshot)`` for any absorption order.
        """
        for (name, labels), value in snapshot.counters.items():
            key = (name, labels)
            if key not in self._counters:
                self._counters[key] = Counter()
            self._counters[key].inc(value)
        for (name, labels), value in snapshot.gauges.items():
            key = (name, labels)
            if key not in self._gauges:
                self._gauges[key] = Gauge()
            self._gauges[key].record(value)
        for (name, labels), snap in snapshot.histograms.items():
            key = (name, labels)
            if key not in self._histograms:
                fixed = self._histogram_bounds.get(name)
                if fixed is not None and fixed != snap.bounds:
                    raise ObsError(
                        f"histogram {name!r} already registered with"
                        f" bounds {fixed}"
                    )
                self._histogram_bounds.setdefault(name, snap.bounds)
                self._histograms[key] = Histogram(snap.bounds)
            self._histograms[key].absorb(snap)

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current state of every instrument."""
        return MetricsSnapshot(
            counters={
                key: counter.value for key, counter in self._counters.items()
            },
            gauges={
                key: gauge.value
                for key, gauge in self._gauges.items()
                if gauge.value is not None
            },
            histograms={
                key: histogram.snapshot()
                for key, histogram in self._histograms.items()
            },
        )
