"""tracelint: a rule-registry invariant checker for JSONL archives.

Schema validation (:func:`repro.obs.validate_events`) proves each event
is *well-formed*; tracelint proves the archive as a whole is
*self-consistent* — the cross-event invariants the orchestrator's
design guarantees and a divergence hunt relies on:

============================  =============================================
rule                          invariant
============================  =============================================
``span-nesting``              unique span ids, parents exist, intervals
                              non-negative, children nest inside parents
``sim-time-monotonic``        span start times never run backwards in id
                              (begin-order) sequence — except ``ca-batch``
                              spans, which are recorded at scheduling time
                              with their *future* service window — and
                              heartbeat sim-times are non-decreasing
``single-flight``             per vehicle: exactly one lifecycle span, and
                              never two overlapping spans of one operation
                              category (enroll / establish / migrate /
                              re-enroll) — the orchestrator's single-flight
                              invariant
``counter-monotonic``         heartbeat progress counters never decrease
                              and never exceed their totals
``shard-conservation``        every migration out of a shard arrives at
                              one: ``Σ migrations_in == Σ migrations_out``
                              (and both equal ``fleet.migrations``)
``injection-balance``         per injection kind:
                              ``attempts == rejected + succeeded`` — on
                              the counters and on every injection span
``heartbeat-coverage``        an archive with a run span carries at least
                              one heartbeat, the final beat reports every
                              vehicle done, and no beat postdates the
                              run's recorded end
``policy-balance``            counted policy decisions balance the actions
                              they triggered: ``policy.migrate`` decisions
                              == ``Σ migrations_in``, ``policy.rekey``
                              decisions == ``Σ rekeys``, and (when the
                              archive carries them — spans stay
                              worker-local in parallel runs) per-point
                              policy span events match the counters
============================  =============================================

Each finding names its rule and the offending archive line (1-based —
events are one per line in a JSONL archive), so
``python -m repro.obs lint run.jsonl`` output is directly clickable.
New rules register with the :func:`lint_rule` decorator; a rule is a
function from the event list to an iterable of ``(line_index, message)``
pairs (``line_index`` may be ``None`` for archive-wide findings).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ObsError

__all__ = [
    "LINT_RULES",
    "LintFinding",
    "lint_archive",
    "lint_rule",
    "run_lint",
]

#: Registry of lint rules, keyed by rule name (insertion-ordered).
LINT_RULES: dict = {}

#: Span categories covered by the per-vehicle single-flight invariant.
SINGLE_FLIGHT_CATEGORIES = ("enroll", "establish", "migrate", "re-enroll")


@dataclass(frozen=True)
class LintFinding:
    """One invariant violation: rule name, archive line, message."""

    rule: str
    line: int | None
    message: str

    def render(self) -> str:
        """``rule:line: message`` (the CLI's output line)."""
        where = self.line if self.line is not None else "-"
        return f"{self.rule}:{where}: {self.message}"


def lint_rule(name: str):
    """Register a rule function under ``name`` in :data:`LINT_RULES`."""

    def register(func):
        if name in LINT_RULES:
            raise ObsError(f"lint rule {name!r} registered twice")
        LINT_RULES[name] = func
        return func

    return register


def run_lint(events, rules=None) -> list:
    """Run every (or the named) lint rule over an event list.

    Returns the findings as :class:`LintFinding` objects with 1-based
    line numbers (event index + 1, matching the JSONL archive layout).
    """
    events = list(events)
    if rules is None:
        selected = LINT_RULES
    else:
        unknown = [name for name in rules if name not in LINT_RULES]
        if unknown:
            raise ObsError(
                f"unknown lint rules {unknown}"
                f" (known: {sorted(LINT_RULES)})"
            )
        selected = {name: LINT_RULES[name] for name in rules}
    findings = []
    for name, rule in selected.items():
        for index, message in rule(events):
            findings.append(
                LintFinding(
                    rule=name,
                    line=index + 1 if index is not None else None,
                    message=message,
                )
            )
    return findings


def lint_archive(path, rules=None) -> list:
    """Load a JSONL archive and :func:`run_lint` it."""
    from .export import read_jsonl

    return run_lint(read_jsonl(path), rules=rules)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _spans(events):
    """``(index, span_event)`` pairs, in archive order (= id order)."""
    return [
        (index, event)
        for index, event in enumerate(events)
        if event.get("type") == "span"
    ]


def _heartbeats(events):
    return [
        (index, event)
        for index, event in enumerate(events)
        if event.get("type") == "heartbeat"
    ]


def _counters(events):
    return [
        (index, event)
        for index, event in enumerate(events)
        if event.get("type") == "counter"
    ]


def _counter_totals(events):
    """``{name: {labels_tuple: (index, value)}}`` over counter events."""
    out: dict = {}
    for index, event in _counters(events):
        labels = tuple(sorted(event.get("labels", {}).items()))
        out.setdefault(event["name"], {})[labels] = (index, event["value"])
    return out


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

@lint_rule("span-nesting")
def _rule_span_nesting(events):
    """Tree shape: unique ids, known parents, intervals nest."""
    by_id: dict = {}
    for index, span in _spans(events):
        span_id = span["id"]
        if span_id in by_id:
            yield index, f"duplicate span id {span_id}"
            continue
        by_id[span_id] = (index, span)
    for index, span in _spans(events):
        if span["end_ms"] < span["start_ms"]:
            yield index, (
                f"span {span['name']!r} has negative interval"
                f" [{span['start_ms']}, {span['end_ms']}]"
            )
        parent_id = span.get("parent")
        if parent_id is None:
            continue
        if parent_id not in by_id:
            yield index, (
                f"span {span['name']!r} names unknown parent {parent_id}"
            )
            continue
        _, parent = by_id[parent_id]
        if not (
            parent["start_ms"] <= span["start_ms"]
            and span["end_ms"] <= parent["end_ms"]
        ):
            yield index, (
                f"span {span['name']!r}"
                f" [{span['start_ms']}, {span['end_ms']}] escapes parent"
                f" {parent['name']!r}"
                f" [{parent['start_ms']}, {parent['end_ms']}]"
            )


@lint_rule("sim-time-monotonic")
def _rule_sim_time_monotonic(events):
    """Begin-order span starts and heartbeat times never run backwards.

    Span ids are assigned in ``begin()`` order and the simulated clock
    only advances, so ``start_ms`` must be non-decreasing in id order —
    with one designed exception: ``ca-batch`` spans are emitted when a
    batch is *scheduled*, carrying the future service window the
    orchestrator computed, so they may postdate spans begun later.
    """
    last_start = None
    last_name = None
    for index, span in _spans(events):
        if span.get("cat") == "ca-batch":
            continue
        if last_start is not None and span["start_ms"] < last_start:
            yield index, (
                f"span {span['name']!r} (id {span['id']}) starts at"
                f" {span['start_ms']} ms, before the earlier-begun"
                f" {last_name!r} at {last_start} ms"
            )
        last_start = span["start_ms"]
        last_name = span["name"]
    last_sim = None
    for index, beat in _heartbeats(events):
        if last_sim is not None and beat["sim_ms"] < last_sim:
            yield index, (
                f"heartbeat sim-time ran backwards:"
                f" {beat['sim_ms']} ms after {last_sim} ms"
            )
        last_sim = beat["sim_ms"]


@lint_rule("single-flight")
def _rule_single_flight(events):
    """Per vehicle: one lifecycle span, one in-flight op per category."""
    lifecycles: dict = {}
    ops: dict = {}
    for index, span in _spans(events):
        attrs = span.get("attrs", {})
        vehicle = attrs.get("vehicle")
        if vehicle is None:
            continue
        if span.get("cat") == "vehicle":
            lifecycles.setdefault(vehicle, []).append((index, span))
        elif span.get("cat") in SINGLE_FLIGHT_CATEGORIES:
            ops.setdefault((vehicle, span["cat"]), []).append(
                (index, span)
            )
    for vehicle, spans in sorted(lifecycles.items()):
        if len(spans) > 1:
            index, span = spans[1]
            yield index, (
                f"vehicle {vehicle} has {len(spans)} lifecycle spans"
                " (expected exactly one)"
            )
    for (vehicle, category), spans in sorted(ops.items()):
        ordered = sorted(
            spans, key=lambda pair: (pair[1]["start_ms"], pair[1]["id"])
        )
        for (_, prev), (index, span) in zip(ordered, ordered[1:]):
            if span["start_ms"] < prev["end_ms"]:
                yield index, (
                    f"vehicle {vehicle} has overlapping {category!r}"
                    f" spans: {span['name']!r} starts at"
                    f" {span['start_ms']} ms inside"
                    f" [{prev['start_ms']}, {prev['end_ms']}]"
                )


@lint_rule("counter-monotonic")
def _rule_counter_monotonic(events):
    """Heartbeat progress only ever moves forward, and stays in range."""
    last_done = last_records = None
    for index, beat in _heartbeats(events):
        done = beat["vehicles_done"]
        records = beat["records_sent"]
        if last_done is not None and done < last_done:
            yield index, (
                f"vehicles_done decreased: {done} after {last_done}"
            )
        if last_records is not None and records < last_records:
            yield index, (
                f"records_sent decreased: {records} after {last_records}"
            )
        if done > beat["vehicles_total"]:
            yield index, (
                f"vehicles_done {done} exceeds vehicles_total"
                f" {beat['vehicles_total']}"
            )
        last_done, last_records = done, records


@lint_rule("shard-conservation")
def _rule_shard_conservation(events):
    """Migrations are conserved: every departure arrives somewhere."""
    totals = _counter_totals(events)
    into = totals.get("fleet.migrations_in", {})
    out_of = totals.get("fleet.migrations_out", {})
    if not into and not out_of:
        return  # archive predates migration accounting, or no churn
    total_in = sum(value for _, value in into.values())
    total_out = sum(value for _, value in out_of.values())
    anchor = next(iter(into.values()), next(iter(out_of.values()), None))
    if total_in != total_out:
        yield anchor[0], (
            f"shard migration flow not conserved: {total_in} in !="
            f" {total_out} out"
        )
    migrations = totals.get("fleet.migrations", {})
    if migrations:
        total = sum(value for _, value in migrations.values())
        if total != total_in:
            index, _ = next(iter(migrations.values()))
            yield index, (
                f"fleet.migrations counter ({total}) disagrees with"
                f" per-shard migration flow ({total_in} in /"
                f" {total_out} out)"
            )


@lint_rule("injection-balance")
def _rule_injection_balance(events):
    """Adversarial accounting: attempts == rejected + succeeded."""
    totals = _counter_totals(events)

    def by_kind(name):
        out = {}
        for labels, (index, value) in totals.get(name, {}).items():
            kind = dict(labels).get("kind", "")
            out[kind] = (index, value)
        return out

    attempts = by_kind("fleet.injection_attempts")
    rejected = by_kind("fleet.injection_rejected")
    succeeded = by_kind("fleet.injection_succeeded")
    for kind in sorted(attempts):
        index, n_attempts = attempts[kind]
        n_rejected = rejected.get(kind, (None, 0))[1]
        n_succeeded = succeeded.get(kind, (None, 0))[1]
        if n_attempts != n_rejected + n_succeeded:
            yield index, (
                f"injection {kind!r} lost attempts: {n_attempts} !="
                f" {n_rejected} rejected + {n_succeeded} succeeded"
            )
    for index, span in _spans(events):
        if span.get("cat") != "injection":
            continue
        attrs = span.get("attrs", {})
        if not {"attempts", "rejected", "succeeded"} <= set(attrs):
            continue
        # CA-flood rejections are tallied later, as the flooded queue
        # drains — the dispatch-time span may legitimately under-count
        # rejections, never over-count them past the attempts.
        if attrs["rejected"] + attrs["succeeded"] > attrs["attempts"]:
            yield index, (
                f"injection span {span['name']!r} over-accounts:"
                f" {attrs['rejected']} rejected +"
                f" {attrs['succeeded']} succeeded >"
                f" {attrs['attempts']} attempts"
            )


@lint_rule("heartbeat-coverage")
def _rule_heartbeat_coverage(events):
    """A fleet run's beats cover it: present, complete, inside the run."""
    beats = _heartbeats(events)
    run_spans = [
        (index, span)
        for index, span in _spans(events)
        if span.get("cat") == "run"
    ]
    if not beats:
        if run_spans:
            yield run_spans[0][0], (
                "archive has a fleet run span but no heartbeats"
            )
        return
    index, last = beats[-1]
    if last["vehicles_done"] != last["vehicles_total"]:
        yield index, (
            f"final heartbeat reports {last['vehicles_done']} of"
            f" {last['vehicles_total']} vehicles done — the run ended"
            " incomplete"
        )
    meta = next(
        (event for event in events if event.get("type") == "meta"), None
    )
    if meta is not None and "sim_end_ms" in meta:
        for index, beat in beats:
            if beat["sim_ms"] > meta["sim_end_ms"]:
                yield index, (
                    f"heartbeat at {beat['sim_ms']} ms postdates the"
                    f" run end {meta['sim_end_ms']} ms"
                )


@lint_rule("policy-balance")
def _rule_policy_balance(events):
    """Policy decisions balance the actions they triggered.

    Every counted ``policy.migrate`` decision starts exactly one
    migration (``Σ fleet.migrations_in``) and every ``policy.rekey``
    decision performs exactly one re-key (``Σ fleet.rekeys``) — the
    engine never decides without acting, and the orchestrator never
    acts without a decision (manual :meth:`migrate` calls are
    attributed to the pseudo rule ``"api"``).  Archives without policy
    counters predate the policy layer and are skipped.
    """
    totals = _counter_totals(events)
    balances = (
        ("policy.migrate", "fleet.migrations_in"),
        ("policy.rekey", "fleet.rekeys"),
    )
    for decision_name, action_name in balances:
        cells = totals.get(decision_name, {})
        if not cells:
            continue  # archive predates the policy layer, or no decisions
        anchor = next(iter(cells.values()))[0]
        decided = sum(value for _, value in cells.values())
        acted = sum(
            value for _, value in totals.get(action_name, {}).values()
        )
        if decided != acted:
            yield anchor, (
                f"{decision_name} decisions ({decided}) do not balance"
                f" {action_name} ({acted})"
            )
    # Span cross-check: every counted decision leaves one span event.
    # Spans stay worker-local in process-parallel runs while counters
    # merge, so this only runs when the archive carries policy spans.
    span_cells: dict = {}
    for index, span in _spans(events):
        if span.get("cat") != "policy":
            continue
        point = span["name"].rsplit(":", 1)[-1]
        anchor, count = span_cells.get(point, (index, 0))
        span_cells[point] = (anchor, count + 1)
    for point, (anchor, count) in sorted(span_cells.items()):
        counted = sum(
            value
            for _, value in totals.get(f"policy.{point}", {}).values()
        )
        if count != counted:
            yield anchor, (
                f"policy span events for point {point!r} ({count}) do"
                f" not match the policy.{point} counter total ({counted})"
            )
