"""Run diffing: localize where two deterministic runs first diverged.

``diff_runs(a, b)`` compares the digest trees of two runs top-down and
returns a structured :class:`DivergenceReport`.  Matching roots prove
every event equal; on a mismatch the walk descends into the *first*
diverging child at each level (names sorted, so the choice is
deterministic) until it reaches a leaf, producing the full path —
shard / vehicle / span / event — plus an event-level field delta and,
when the metric planes disagree, a metric-by-metric snapshot diff.

The walk's cost is the point: it compares node digests only along the
descent, so localization takes ``O(fanout x depth)`` comparisons —
bounded by the tree's radix geometry, *independent of how many events
the runs produced* (``DivergenceReport.nodes_compared`` records the
actual count; the test suite asserts the bound on a 1k-vehicle run).

Inputs are flexible: a :class:`~repro.obs.tree.DigestTree`, a list of
event dicts, or a path to a JSONL archive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import ObsError
from .tree import DigestTree, TreeNode

__all__ = ["DivergenceReport", "diff_runs"]


def _as_tree(source, include=None) -> DigestTree:
    if isinstance(source, DigestTree):
        return source
    if isinstance(source, (list, tuple)):
        return DigestTree.from_events(source, include=include)
    if hasattr(source, "deterministic_events"):  # an Observer
        return DigestTree.from_events(
            source.deterministic_events(), include=include
        )
    from .export import read_jsonl

    return DigestTree.from_events(
        read_jsonl(source), include=include
    )


def _payload_delta(left: dict | None, right: dict | None) -> dict:
    """Per-field ``{key: [a_value, b_value]}`` delta of two leaf events."""
    left = left or {}
    right = right or {}
    delta = {}
    for key in sorted(set(left) | set(right)):
        a_value = left.get(key)
        b_value = right.get(key)
        if a_value != b_value:
            delta[key] = [a_value, b_value]
    return delta


@dataclass(frozen=True)
class DivergenceReport:
    """Where (and how) two runs first diverged.

    Attributes:
        diverged: whether any difference exists at all.
        path: tree path of the first diverging leaf (or of the deepest
            diverging node when one side is missing a whole subtree).
        kind: ``"identical"``, ``"changed"`` (leaf present on both
            sides with different content), ``"only-in-a"`` or
            ``"only-in-b"`` (subtree missing on one side).
        left / right: the leaf payloads on each side (``None`` when
            missing or when the divergence is a whole subtree).
        delta: ``{field: [a_value, b_value]}`` for the diverging leaf.
        left_lines / right_lines: 1-based archive line numbers of the
            diverging leaf on each side (when built from archives).
        sibling_divergences: names of *other* diverging children at the
            deepest branch point — how wide the damage is at that level.
        metric_diff: ``{leaf_name: delta}`` for every differing
            metric-plane leaf (the metric-snapshot diff; empty when the
            metric planes agree).
        nodes_compared: digest comparisons the walk performed — the
            O(fanout x depth) localization bound.
        a_root / b_root: the two root digests.
    """

    diverged: bool
    path: tuple = ()
    kind: str = "identical"
    left: dict | None = None
    right: dict | None = None
    delta: dict = field(default_factory=dict)
    left_lines: tuple = ()
    right_lines: tuple = ()
    sibling_divergences: tuple = ()
    metric_diff: dict = field(default_factory=dict)
    nodes_compared: int = 0
    a_root: str = ""
    b_root: str = ""

    def as_dict(self) -> dict:
        """JSON-ready rendering of the report."""
        return {
            "diverged": self.diverged,
            "path": list(self.path),
            "kind": self.kind,
            "left": self.left,
            "right": self.right,
            "delta": self.delta,
            "left_lines": list(self.left_lines),
            "right_lines": list(self.right_lines),
            "sibling_divergences": list(self.sibling_divergences),
            "metric_diff": self.metric_diff,
            "nodes_compared": self.nodes_compared,
            "a_root": self.a_root,
            "b_root": self.b_root,
        }

    def to_json(self) -> str:
        """The :meth:`as_dict` rendering as an indented JSON string."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        """Human-readable localization report (markdown body)."""
        lines = []
        if not self.diverged:
            lines.append(
                f"Runs are **identical**: digest-tree root"
                f" `{self.a_root[:16]}...` matches on both sides"
                f" ({self.nodes_compared} node comparisons)."
            )
            return "\n".join(lines) + "\n"
        lines.append(
            f"Runs **diverge**: roots `{self.a_root[:16]}...` !="
            f" `{self.b_root[:16]}...`."
        )
        lines.append("")
        lines.append(
            f"First divergence ({self.kind}) at"
            f" `{' / '.join(self.path)}`"
            f" — localized in {self.nodes_compared} node comparisons."
        )
        if self.left_lines or self.right_lines:
            lines.append(
                f"Archive lines: a={list(self.left_lines) or '—'}"
                f" b={list(self.right_lines) or '—'}."
            )
        if self.sibling_divergences:
            shown = ", ".join(
                f"`{name}`" for name in self.sibling_divergences[:6]
            )
            extra = len(self.sibling_divergences) - 6
            lines.append(
                f"Also diverging at the same level: {shown}"
                + (f" (+{extra} more)" if extra > 0 else "")
                + "."
            )
        if self.delta:
            lines.append("")
            lines.append("| field | run a | run b |")
            lines.append("| --- | --- | --- |")
            for key, (a_value, b_value) in sorted(self.delta.items()):
                lines.append(f"| {key} | {a_value!r} | {b_value!r} |")
        if self.metric_diff:
            lines.append("")
            lines.append(
                f"Metric-plane diff ({len(self.metric_diff)} differing"
                " series):"
            )
            lines.append("")
            lines.append("| metric | field | run a | run b |")
            lines.append("| --- | --- | --- | --- |")
            for name in sorted(self.metric_diff):
                for key, (a_value, b_value) in sorted(
                    self.metric_diff[name].items()
                ):
                    lines.append(
                        f"| {name} | {key} | {a_value!r} | {b_value!r} |"
                    )
        return "\n".join(lines) + "\n"


def _metric_plane_diff(a: DigestTree, b: DigestTree) -> dict:
    """Per-leaf deltas of the two metric planes (full snapshot diff)."""
    def metric_leaves(tree: DigestTree) -> dict:
        return {
            "/".join(path): payload
            for path, payload in tree.leaves().items()
            if payload.get("type") in ("counter", "gauge", "histogram")
        }

    left = metric_leaves(a)
    right = metric_leaves(b)
    diff = {}
    for name in sorted(set(left) | set(right)):
        delta = _payload_delta(left.get(name), right.get(name))
        if delta:
            diff[name] = delta
    return diff


def diff_runs(a, b, include=None) -> DivergenceReport:
    """Locate the first divergence between two runs' digest trees.

    ``a`` and ``b`` may each be a :class:`DigestTree`, a list of event
    dicts, an :class:`~repro.obs.Observer`, or a JSONL archive path.
    ``include`` restricts both trees to a subset of
    :data:`~repro.obs.tree.TREE_SECTIONS` (the CI diff-parity step
    passes ``("metrics",)`` to compare worker counts on the plane the
    merge laws make bit-identical).
    """
    tree_a = _as_tree(a, include=include)
    tree_b = _as_tree(b, include=include)
    compared = 1
    if tree_a.root_digest == tree_b.root_digest:
        return DivergenceReport(
            diverged=False,
            nodes_compared=compared,
            a_root=tree_a.root_digest,
            b_root=tree_b.root_digest,
        )
    node_a: TreeNode | None = tree_a.root
    node_b: TreeNode | None = tree_b.root
    path: list[str] = []
    siblings: tuple = ()
    kind = "changed"
    while True:
        if node_a is None or node_b is None:
            kind = "only-in-b" if node_a is None else "only-in-a"
            break
        if node_a.is_leaf or node_b.is_leaf:
            # A leaf on either side ends the walk: either both are
            # leaves (a changed event) or the sides disagree on shape
            # at this path, which the delta renders field-by-field.
            break
        names = sorted(set(node_a.children) | set(node_b.children))
        diverging = []
        for name in names:
            child_a = node_a.children.get(name)
            child_b = node_b.children.get(name)
            compared += 1
            if child_a is None or child_b is None:
                diverging.append(name)
            elif child_a.digest != child_b.digest:
                diverging.append(name)
        if not diverging:  # pragma: no cover - unequal parents must
            break  # have an unequal child; defensive only
        first = diverging[0]
        siblings = tuple(diverging[1:])
        path.append(first)
        node_a = node_a.children.get(first)
        node_b = node_b.children.get(first)
    left = node_a.payload if node_a is not None and node_a.is_leaf else None
    right = node_b.payload if node_b is not None and node_b.is_leaf else None
    return DivergenceReport(
        diverged=True,
        path=tuple(path),
        kind=kind,
        left=left,
        right=right,
        delta=_payload_delta(left, right),
        left_lines=(
            node_a.lines if node_a is not None and node_a.is_leaf else ()
        ),
        right_lines=(
            node_b.lines if node_b is not None and node_b.is_leaf else ()
        ),
        sibling_divergences=siblings,
        # The snapshot diff is a full metric-plane scan, but only runs
        # once a divergence is already established; it is empty when
        # the metric planes agree (e.g. a span-only divergence).
        metric_diff=_metric_plane_diff(tree_a, tree_b),
        nodes_compared=compared,
        a_root=tree_a.root_digest,
        b_root=tree_b.root_digest,
    )
