"""``python -m repro.obs``: archive tooling for deterministic runs.

Four subcommands over exported JSONL archives:

``validate``
    Schema-check every event (:func:`repro.obs.validate_events`).
``lint``
    Run the tracelint invariant rules (:mod:`repro.obs.lint`).
``diff``
    Localize the first divergence between two archives
    (:func:`repro.obs.diff_runs`) — markdown by default, ``--json``
    for machines, ``--only SECTION`` to restrict the planes compared
    (e.g. ``--only metrics`` for cross-worker-count parity).
``perfetto``
    Rebuild the Chrome/Perfetto trace document from an archive's span
    and heartbeat events.

Every subcommand exits 1 when it finds something (invalid events, lint
findings, a divergence) and 0 on a clean archive, so they slot into CI
steps directly.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ObsError
from .diff import diff_runs
from .export import read_jsonl, write_chrome_trace
from .lint import LINT_RULES, lint_archive
from .spans import Span
from .tree import TREE_SECTIONS


def _spans_from_events(events) -> list:
    """Reconstruct :class:`Span` objects from archived span events."""
    return [
        Span(
            span_id=event["id"],
            parent_id=event["parent"],
            name=event["name"],
            category=event["cat"],
            start_ms=event["start_ms"],
            end_ms=event["end_ms"],
            attributes=tuple(sorted(event.get("attrs", {}).items())),
        )
        for event in events
        if event.get("type") == "span"
    ]


def _cmd_validate(args) -> int:
    """``validate``: schema-check an archive; 0 clean, 1 invalid."""
    try:
        events = read_jsonl(args.archive, validate=True)
    except ObsError as exc:
        print(f"invalid: {exc}", file=sys.stderr)
        return 1
    print(f"{args.archive}: {len(events)} events, all valid")
    return 0


def _cmd_lint(args) -> int:
    """``lint``: run tracelint rules; 0 clean, 1 on findings."""
    try:
        findings = lint_archive(args.archive, rules=args.rules or None)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for finding in findings:
        print(f"{args.archive}:{finding.render()}")
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    rules = args.rules or list(LINT_RULES)
    print(f"{args.archive}: clean ({len(rules)} rules)")
    return 0


def _cmd_diff(args) -> int:
    """``diff``: localize divergence; 0 identical, 1 diverged."""
    include = tuple(args.only) if args.only else None
    try:
        report = diff_runs(args.a, args.b, include=include)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(report.to_json())
    else:
        print(report.to_markdown(), end="")
    return 1 if report.diverged else 0


def _cmd_perfetto(args) -> int:
    """``perfetto``: rebuild the Chrome trace from an archive."""
    try:
        events = read_jsonl(args.archive)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    spans = _spans_from_events(events)
    heartbeats = [e for e in events if e.get("type") == "heartbeat"]
    meta = next((e for e in events if e.get("type") == "meta"), None)
    if meta is not None:
        meta = {k: v for k, v in meta.items() if k != "type"}
    trace = write_chrome_trace(
        args.out, spans, heartbeats=heartbeats, meta=meta
    )
    print(
        f"{args.out}: {len(trace['traceEvents'])} trace events from"
        f" {len(spans)} spans, {len(heartbeats)} heartbeats"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate, lint, diff and export repro.obs"
        " JSONL archives.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser(
        "validate", help="schema-check every event in an archive"
    )
    p_validate.add_argument("archive", help="JSONL archive path")
    p_validate.set_defaults(func=_cmd_validate)

    p_lint = sub.add_parser(
        "lint", help="run tracelint invariant rules over an archive"
    )
    p_lint.add_argument("archive", help="JSONL archive path")
    p_lint.add_argument(
        "--rules",
        nargs="+",
        choices=sorted(LINT_RULES),
        help="run only these rules (default: all)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_diff = sub.add_parser(
        "diff", help="localize the first divergence between two archives"
    )
    p_diff.add_argument("a", help="first JSONL archive")
    p_diff.add_argument("b", help="second JSONL archive")
    p_diff.add_argument(
        "--only",
        action="append",
        choices=list(TREE_SECTIONS),
        help="compare only these tree sections (repeatable)",
    )
    p_diff.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_perfetto = sub.add_parser(
        "perfetto",
        help="rebuild the Chrome/Perfetto trace from an archive",
    )
    p_perfetto.add_argument("archive", help="JSONL archive path")
    p_perfetto.add_argument(
        "-o", "--out", required=True, help="Chrome trace output path"
    )
    p_perfetto.set_defaults(func=_cmd_perfetto)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
