"""``repro.obs`` — deterministic fleet telemetry.

The paper's methodology is observability-by-counting: primitives are
traced (:mod:`repro.trace`) and priced into embedded execution time.
This package extends that lens along the axes the flat counters miss —
*when* things happened (sim-time spans), *where* (labeled metrics per
shard/backend/event class), *how the run is going* (progress
heartbeats) and *how long primitives took on this host per backend*
(:mod:`repro.obs.profile`).

Two contracts, inherited from :class:`repro.trace.CostTrace`:

* **Zero overhead when disabled.**  Without an observer attached the
  orchestrator's only extra work is one ``is not None`` check per hook
  site.
* **Digest-neutral when enabled.**  Hooks read state; they never
  consume DRBG output, never schedule simulator events, and never
  mutate fleet state — every historical golden digest reproduces
  bit-identically with observability on or off
  (``tests/fleet/test_obs_integration.py`` locks all of PR 1–6).

Quickstart::

    >>> from repro.fleet import FleetConfig, run_fleet
    >>> from repro.obs import Observer
    >>> obs = Observer()
    >>> result = run_fleet(FleetConfig(
    ...     n_vehicles=2, seed=b"docs-obs", records_per_vehicle=2,
    ...     max_records=2, arrival_spread_ms=5.0), obs=obs)
    >>> obs.spans.validate()            # tree well-formed
    >>> obs.metrics.snapshot().counter_total("fleet.records_sent")
    4
    >>> [hb["vehicles_done"] for hb in obs.heartbeats][-1]
    2

Export the same run for Perfetto / ``chrome://tracing`` with
``obs.export_chrome_trace(path)``, as JSONL with
``obs.export_jsonl(path)``, or as a markdown rollup with
``obs.markdown_rollup()``.
"""

from __future__ import annotations

from .export import (
    CHROME_TRACE_SCHEMA,
    EVENT_SCHEMAS,
    chrome_trace,
    markdown_rollup,
    read_jsonl,
    validate_chrome_trace,
    validate_events,
    validate_schema,
    write_chrome_trace,
    write_jsonl,
)
from .diff import DivergenceReport, diff_runs
from .lint import (
    LINT_RULES,
    LintFinding,
    lint_archive,
    lint_rule,
    run_lint,
)
from .metrics import (
    DEFAULT_BUCKETS_MS,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    merge_metric_events,
)
from .profile import (
    PRIMITIVE_CLASSES,
    ProfileReport,
    ProfilingBackend,
    profile_fleet_run,
    profiled_backend,
    render_speedup_table,
    speedup_table,
)
from .spans import FLEET_CATEGORIES, Span, SpanRecorder
from .tree import (
    TREE_SECTIONS,
    DigestTree,
    DigestTreeBuilder,
    TreeNode,
    event_tree_path,
)

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "DEFAULT_BUCKETS_MS",
    "DigestTree",
    "DigestTreeBuilder",
    "DivergenceReport",
    "EVENT_SCHEMAS",
    "FLEET_CATEGORIES",
    "HistogramSnapshot",
    "LINT_RULES",
    "LintFinding",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Observer",
    "PRIMITIVE_CLASSES",
    "ProfileReport",
    "ProfilingBackend",
    "Span",
    "SpanRecorder",
    "TREE_SECTIONS",
    "TreeNode",
    "chrome_trace",
    "diff_runs",
    "event_tree_path",
    "lint_archive",
    "lint_rule",
    "markdown_rollup",
    "merge_metric_events",
    "profile_fleet_run",
    "profiled_backend",
    "read_jsonl",
    "render_speedup_table",
    "run_lint",
    "speedup_table",
    "validate_chrome_trace",
    "validate_events",
    "validate_schema",
    "write_chrome_trace",
    "write_jsonl",
]


def _peak_rss_kb() -> int | None:
    """Peak resident set size of this process in kB (Linux/macOS)."""
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kB on Linux, bytes on macOS.
        return peak // 1024 if sys.platform == "darwin" else peak
    except Exception:  # pragma: no cover - platform without resource
        return None


class Observer:
    """One run's telemetry: spans + metrics + heartbeats + meta.

    Args:
        wall_clock: annotate spans and heartbeats with host wall-clock
            and peak-RSS readings.  Off by default; the annotations are
            non-deterministic by definition and live under the clearly
            marked ``wall`` keys that :meth:`deterministic_events`
            strips.
        heartbeat_interval_ms: minimum *simulated* time between
            progress heartbeats (a final beat always fires at run end).
        on_heartbeat: optional callable invoked with each heartbeat
            dict — hook for live progress printing on long runs.
    """

    def __init__(
        self,
        wall_clock: bool = False,
        heartbeat_interval_ms: float = 1_000.0,
        on_heartbeat=None,
    ) -> None:
        if heartbeat_interval_ms <= 0:
            from ..errors import ObsError

            raise ObsError(
                "heartbeat_interval_ms must be positive,"
                f" got {heartbeat_interval_ms}"
            )
        self.wall_clock = wall_clock
        self.heartbeat_interval_ms = heartbeat_interval_ms
        self.on_heartbeat = on_heartbeat
        self.spans = SpanRecorder(wall_clock=wall_clock)
        self.metrics = MetricsRegistry()
        self.heartbeats: list[dict] = []
        self.meta: dict = {}

    # -- heartbeats ---------------------------------------------------------

    def heartbeat(
        self,
        sim_ms: float,
        vehicles_done: int,
        vehicles_total: int,
        records_sent: int,
    ) -> dict:
        """Record one progress beat (and return it)."""
        beat = {
            "type": "heartbeat",
            "sim_ms": sim_ms,
            "vehicles_done": vehicles_done,
            "vehicles_total": vehicles_total,
            "records_sent": records_sent,
        }
        if self.wall_clock:
            wall: dict = {}
            peak = _peak_rss_kb()
            if peak is not None:
                wall["peak_rss_kb"] = peak
            import tracemalloc

            if tracemalloc.is_tracing():
                current, traced_peak = tracemalloc.get_traced_memory()
                wall["tracemalloc_current"] = current
                wall["tracemalloc_peak"] = traced_peak
            if wall:
                beat["wall"] = wall
        self.heartbeats.append(beat)
        if self.on_heartbeat is not None:
            self.on_heartbeat(beat)
        return beat

    # -- event stream -------------------------------------------------------

    def _meta_event(self) -> dict:
        meta = {"type": "meta", "run": "fleet", "sim_end_ms": 0.0}
        meta.update(self.meta)
        return meta

    def events(self) -> list[dict]:
        """Full JSONL event stream: meta, spans, heartbeats, metrics."""
        events = [self._meta_event()]
        events.extend(span.as_dict() for span in self.spans.finished())
        events.extend(self.heartbeats)
        events.extend(self.metrics.snapshot().events())
        return events

    def deterministic_events(self) -> list[dict]:
        """The event stream with every ``wall`` annotation stripped.

        Two runs with equal ``(config, seed)`` produce *identical*
        output from this method — the property the hypothesis suite
        asserts.
        """
        events = [self._meta_event()]
        events.extend(
            span.deterministic_dict() for span in self.spans.finished()
        )
        events.extend(
            {key: value for key, value in beat.items() if key != "wall"}
            for beat in self.heartbeats
        )
        events.extend(self.metrics.snapshot().events())
        return events

    # -- exporters ----------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write the full event stream as JSONL; returns event count."""
        return write_jsonl(path, self.events())

    def export_chrome_trace(self, path) -> dict:
        """Write a Perfetto/``chrome://tracing`` trace; returns it."""
        return write_chrome_trace(
            path,
            self.spans.finished(),
            heartbeats=self.heartbeats,
            meta=self.meta,
        )

    def markdown_rollup(self) -> str:
        """Markdown telemetry summary (body only, no header)."""
        return markdown_rollup(
            self.spans.finished(),
            self.metrics.snapshot(),
            heartbeats=self.heartbeats,
            meta=self.meta,
        )

    def digest_tree(self, include=None) -> DigestTree:
        """Hierarchical digest tree over :meth:`deterministic_events`.

        ``include`` restricts the tree to a subset of
        :data:`TREE_SECTIONS` (e.g. ``("metrics",)`` for the plane
        that is bit-identical across worker counts).
        """
        return DigestTree.from_events(
            self.deterministic_events(), include=include
        )

    def validate(self) -> int:
        """Validate the span tree and the event stream; returns count."""
        self.spans.validate()
        return validate_events(self.events())
