"""Elliptic-curve Diffie–Hellman shared-secret computation.

Two flavours matching the paper's terminology:

* :func:`static_shared_secret` — the **SKD** primitive
  (``Sk = Prk_a * Puk_b``, paper Section II-A): the secret is tied to the
  certificate key pair, so it stays constant for the whole certificate
  session.  This is what S-ECDSA/SCIANC/PORAMB build on.
* :func:`ephemeral_shared_secret` — the **DKD** primitive
  (``K_PM = X_A * XG_B``, paper Eq. 3): both inputs are fresh per
  communication session, giving perfect forward secrecy.  This is the STS
  premaster computation.

Both reduce to one general-point scalar multiplication; the distinction is
*which* scalars go in, which is exactly the paper's security argument.
"""

from __future__ import annotations

from ..ec import Point, mul_point
from ..errors import CryptoError
from ..utils import int_to_bytes


def shared_point(private_scalar: int, peer_public: Point) -> Point:
    """Raw ECDH: ``private * PeerPublic`` with subgroup sanity checks."""
    curve = peer_public.curve
    if peer_public.is_infinity:
        raise CryptoError("peer public key is the point at infinity")
    if not 1 <= private_scalar < curve.n:
        raise CryptoError("ECDH private scalar out of range")
    point = mul_point(private_scalar, peer_public)
    if point.is_infinity:
        raise CryptoError("ECDH produced the point at infinity")
    return point


def shared_secret_bytes(private_scalar: int, peer_public: Point) -> bytes:
    """ECDH shared secret as the X coordinate octet string (SEC 1)."""
    point = shared_point(private_scalar, peer_public)
    return int_to_bytes(point.x, peer_public.curve.field_bytes)


def static_shared_secret(
    own_private: int, peer_certificate_public: Point
) -> bytes:
    """SKD secret: certificate private key × peer certificate public key."""
    return shared_secret_bytes(own_private, peer_certificate_public)


def ephemeral_shared_secret(
    own_ephemeral_private: int, peer_ephemeral_public: Point
) -> bytes:
    """DKD premaster: fresh scalar × fresh peer point (paper Eq. 3)."""
    return shared_secret_bytes(own_ephemeral_private, peer_ephemeral_public)
