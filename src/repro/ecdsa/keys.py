"""EC key pairs and key generation.

Key material is generated through an :class:`~repro.primitives.drbg.HmacDrbg`
instance so every experiment is deterministic and replayable — the same
discipline an embedded device with a seeded DRBG follows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ec import Curve, Point, encode_point, mul_base
from ..errors import CryptoError
from ..primitives import HmacDrbg
from ..utils import int_to_bytes


@dataclass(frozen=True)
class KeyPair:
    """A private scalar and its public point on ``curve``."""

    curve: Curve
    private: int
    public: Point

    def __post_init__(self) -> None:
        if not 1 <= self.private < self.curve.n:
            raise CryptoError("private key out of range [1, n-1]")
        if self.public != mul_base(self.private, self.curve):
            raise CryptoError("public key does not match private key")

    def public_bytes(self, compressed: bool = True) -> bytes:
        """SEC 1 encoding of the public point."""
        return encode_point(self.public, compressed)

    def private_bytes(self) -> bytes:
        """Fixed-width big-endian encoding of the private scalar."""
        return int_to_bytes(self.private, self.curve.scalar_bytes)

    def __repr__(self) -> str:
        return f"KeyPair({self.curve.name}, public={self.public_bytes().hex()[:16]}…)"


def generate_keypair(curve: Curve, rng: HmacDrbg) -> KeyPair:
    """Generate a key pair with the supplied DRBG."""
    private = rng.random_scalar(curve.n)
    return KeyPair(curve, private, mul_base(private, curve))


def keypair_from_private(curve: Curve, private: int) -> KeyPair:
    """Reconstruct a key pair from a known private scalar."""
    return KeyPair(curve, private, mul_base(private, curve))
