"""ECDSA signing and verification (SEC 1 §4.1, nonces per RFC 6979).

Signatures are the authentication backbone of both the paper's STS design
(Algorithms 1 and 2) and the static S-ECDSA baseline.  Verification uses a
Strauss–Shamir double multiplication (``u1*G + u2*Q``), the optimization
every embedded ECC library applies.

Trace events: ``ecdsa.sign`` / ``ecdsa.verify`` wrap the scalar
multiplications recorded by the EC layer.

Backend note: every scalar multiplication here (``mul_base`` in signing,
``mul_double``/``mul_double_batch`` in verification) dispatches through
the :mod:`repro.backend` EC seam, so signatures and verifications run on
OpenSSL point math under the accelerated backend with bit-identical
bytes and traces — nothing in this module is backend-aware.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import trace
from ..ec import (
    Curve,
    Point,
    inverse_mod,
    mul_base,
    mul_double,
    mul_double_batch,
)
from ..errors import SignatureError
from ..backend import HASH_INFO
from ..primitives import new_hash
from ..primitives.drbg import rfc6979_nonce
from ..utils import bytes_to_int, int_to_bytes


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature ``(r, s)`` over ``curve``."""

    curve: Curve
    r: int
    s: int

    def __post_init__(self) -> None:
        if not (1 <= self.r < self.curve.n and 1 <= self.s < self.curve.n):
            raise SignatureError("signature components out of range")

    def to_bytes(self) -> bytes:
        """Fixed-width ``r || s`` encoding (64 bytes on secp256r1).

        This is the raw encoding the paper's Table II assumes for its
        64-byte ``Sign``/``Resp`` fields (as opposed to ASN.1 DER).
        """
        width = self.curve.scalar_bytes
        return int_to_bytes(self.r, width) + int_to_bytes(self.s, width)

    @classmethod
    def from_bytes(cls, curve: Curve, data: bytes) -> "Signature":
        """Parse a fixed-width ``r || s`` encoding."""
        width = curve.scalar_bytes
        if len(data) != 2 * width:
            raise SignatureError(
                f"signature must be {2 * width} bytes, got {len(data)}"
            )
        return cls(curve, bytes_to_int(data[:width]), bytes_to_int(data[width:]))

    @property
    def wire_size(self) -> int:
        """Size of :meth:`to_bytes` output."""
        return 2 * self.curve.scalar_bytes


def _hash_to_int(message_hash: bytes, n: int) -> int:
    """Convert a hash to an integer per SEC 1 (truncate to order bits)."""
    e = bytes_to_int(message_hash)
    excess = len(message_hash) * 8 - n.bit_length()
    if excess > 0:
        e >>= excess
    return e


def sign(
    curve: Curve,
    private_key: int,
    message: bytes,
    hash_name: str = "sha256",
    extra_entropy: bytes = b"",
) -> Signature:
    """Sign ``message`` with deterministic RFC 6979 nonces.

    Args:
        curve: domain parameters.
        private_key: scalar in ``[1, n-1]``.
        message: the raw message (hashed internally).
        hash_name: digest used both for the message and the nonce HMAC.
        extra_entropy: optional additional nonce entropy (RFC 6979 §3.6),
            used by tests to exercise distinct nonces for one message.
    """
    if not 1 <= private_key < curve.n:
        raise SignatureError("private key out of range")
    if hash_name not in HASH_INFO:
        raise SignatureError(f"unknown hash {hash_name!r}")
    trace.record("ecdsa.sign")
    message_hash = new_hash(hash_name, message).digest()
    e = _hash_to_int(message_hash, curve.n)
    attempt = 0
    while True:
        entropy = extra_entropy + (bytes([attempt]) if attempt else b"")
        k = rfc6979_nonce(private_key, message_hash, curve.n, hash_name, entropy)
        point = mul_base(k, curve)
        r = point.x % curve.n
        if r == 0:
            attempt += 1
            continue
        k_inv = inverse_mod(k, curve.n)
        s = (k_inv * (e + r * private_key)) % curve.n
        if s == 0:
            attempt += 1
            continue
        return Signature(curve, r, s)


def verify(
    public_key: Point,
    message: bytes,
    signature: Signature,
    hash_name: str = "sha256",
) -> bool:
    """Verify an ECDSA signature; returns True/False (never raises on bad sig)."""
    curve = public_key.curve
    if public_key.is_infinity:
        return False
    if signature.curve.name != curve.name:
        return False
    trace.record("ecdsa.verify")
    message_hash = new_hash(hash_name, message).digest()
    e = _hash_to_int(message_hash, curve.n)
    try:
        s_inv = inverse_mod(signature.s, curve.n)
    except Exception:
        return False
    u1 = (e * s_inv) % curve.n
    u2 = (signature.r * s_inv) % curve.n
    point = mul_double(u1, curve.generator, u2, public_key)
    if point.is_infinity:
        return False
    return point.x % curve.n == signature.r


def verify_batch(
    items,
    hash_name: str = "sha256",
) -> list[bool]:
    """Verify many ECDSA signatures with one shared Jacobian normalization.

    Args:
        items: iterable of ``(public_key, message, signature)`` triples;
            all public keys must live on one curve.
        hash_name: digest for every message.

    Each verification still computes its own ``u1*G + u2*Q`` double
    multiplication — the asymptotic cost is unchanged and one
    ``ecdsa.verify`` event is recorded per item, exactly like calling
    :func:`verify` in a loop — but the per-item Jacobian→affine inversion
    collapses into a single Montgomery-trick :func:`~repro.ec.batch_inverse`
    via :func:`~repro.ec.mul_double_batch`.  This is the CA-side win when a
    whole queue of enrollment-request signatures is authenticated at once.

    Returns a per-item list of booleans (malformed items verify False,
    mirroring :func:`verify`'s never-raises contract).
    """
    items = list(items)
    if not items:
        return []
    if hash_name not in HASH_INFO:
        raise SignatureError(f"unknown hash {hash_name!r}")
    results = [False] * len(items)
    terms = []
    term_meta: list[tuple[int, Curve, int]] = []  # (item index, curve, r)
    curve_name: str | None = None
    for index, (public_key, message, signature) in enumerate(items):
        curve = public_key.curve
        if curve_name is None:
            curve_name = curve.name
        elif curve.name != curve_name:
            raise SignatureError(
                "verify_batch requires all public keys on one curve"
            )
        if public_key.is_infinity or signature.curve.name != curve.name:
            continue
        trace.record("ecdsa.verify")
        message_hash = new_hash(hash_name, message).digest()
        e = _hash_to_int(message_hash, curve.n)
        try:
            s_inv = inverse_mod(signature.s, curve.n)
        except Exception:
            continue
        u1 = (e * s_inv) % curve.n
        u2 = (signature.r * s_inv) % curve.n
        terms.append((u1, curve.generator, u2, public_key))
        term_meta.append((index, curve, signature.r))
    if not terms:
        return results
    points = mul_double_batch(terms, term_meta[0][1])
    for (index, curve, r), point in zip(term_meta, points):
        if not point.is_infinity:
            results[index] = point.x % curve.n == r
    return results


def verify_strict(
    public_key: Point,
    message: bytes,
    signature: Signature,
    hash_name: str = "sha256",
) -> None:
    """Like :func:`verify` but raises :class:`SignatureError` on failure."""
    if not verify(public_key, message, signature, hash_name):
        raise SignatureError("ECDSA signature verification failed")
