"""ECDSA signatures (RFC 6979 deterministic) and ECDH key agreement."""

from .ecdh import (
    ephemeral_shared_secret,
    shared_point,
    shared_secret_bytes,
    static_shared_secret,
)
from .keys import KeyPair, generate_keypair, keypair_from_private
from .signature import Signature, sign, verify, verify_batch, verify_strict

__all__ = [
    "KeyPair",
    "Signature",
    "ephemeral_shared_secret",
    "generate_keypair",
    "keypair_from_private",
    "shared_point",
    "shared_secret_bytes",
    "sign",
    "static_shared_secret",
    "verify",
    "verify_batch",
    "verify_strict",
]
