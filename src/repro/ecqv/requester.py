"""Device side of ECQV issuance (SEC 4 §2.3/2.5 "Cert Request/Reception").

The device:

1. picks ``k_U``, sends ``R_U = k_U * G`` with its identity,
2. on receiving ``(Cert_U, r)`` computes ``e = H(Cert_U)`` and its private
   key ``d_U = e * k_U + r (mod n)``,
3. reconstructs ``Q_U = e * P_U + Q_CA`` and *must* check
   ``Q_U == d_U * G`` before accepting the certificate — this is the SEC 4
   key-confirmation step that catches a corrupted or substituted
   certificate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ec import Curve, Point, mul_base
from ..ecdsa import sign
from ..errors import CertificateError
from ..primitives import HmacDrbg
from .ca import CertificateRequest, IssuedCertificate
from .certificate import Certificate, cert_digest_scalar, reconstruct_public_key


@dataclass(frozen=True)
class EcqvCredential:
    """A device's complete ECQV credential after successful issuance.

    Attributes:
        certificate: the implicit certificate (shareable).
        private_key: the reconstructed private key ``d_U`` (secret).
        public_key: the reconstructed public key ``Q_U``.
    """

    certificate: Certificate
    private_key: int
    public_key: Point

    @property
    def subject_id(self) -> bytes:
        """The credential owner's identity."""
        return self.certificate.subject_id


class CertificateRequester:
    """Stateful device-side ECQV issuance session."""

    def __init__(self, curve: Curve, subject_id: bytes, rng: HmacDrbg) -> None:
        self.curve = curve
        self.subject_id = subject_id
        self._rng = rng
        self._k_u: int | None = None

    def create_request(self, authenticate: bool = False) -> CertificateRequest:
        """Step 1: generate the ephemeral and the request point ``R_U``.

        With ``authenticate=True`` the request additionally carries a
        proof-of-possession signature over the request bytes, made with
        the ephemeral ``k_U`` itself (so ``R_U`` is the verification
        key); CAs serving hostile networks batch-verify these proofs in
        :meth:`~repro.ecqv.ca.CertificateAuthority.issue_batch`.
        """
        self._k_u = self._rng.random_scalar(self.curve.n)
        request = CertificateRequest(
            subject_id=self.subject_id,
            request_point=mul_base(self._k_u, self.curve),
        )
        if authenticate:
            request = CertificateRequest(
                subject_id=request.subject_id,
                request_point=request.request_point,
                signature=sign(
                    self.curve, self._k_u, request.signed_payload()
                ),
            )
        return request

    def process_response(
        self, issued: IssuedCertificate, ca_public: Point
    ) -> EcqvCredential:
        """Steps 2–3: derive ``d_U``, reconstruct ``Q_U`` and key-confirm."""
        if self._k_u is None:
            raise CertificateError("process_response called before create_request")
        cert = issued.certificate
        if cert.subject_id != self.subject_id:
            raise CertificateError("certificate subject mismatch")
        if cert.curve.name != self.curve.name:
            raise CertificateError("certificate curve mismatch")
        e = cert_digest_scalar(cert.encode(), self.curve)
        private = (e * self._k_u + issued.private_reconstruction) % self.curve.n
        if private == 0:
            raise CertificateError("degenerate private key; re-run issuance")
        public = reconstruct_public_key(cert, ca_public)
        if mul_base(private, self.curve) != public:
            raise CertificateError(
                "key confirmation failed: reconstructed keys do not match"
            )
        self._k_u = None
        return EcqvCredential(
            certificate=cert, private_key=private, public_key=public
        )


def issue_credential(
    ca, subject_id: bytes, rng: HmacDrbg, validity_seconds: int | None = None
) -> EcqvCredential:
    """Convenience wrapper running the full issuance round-trip in memory.

    Args:
        ca: a :class:`~repro.ecqv.ca.CertificateAuthority`.
        subject_id: 16-byte device identity.
        rng: the device's DRBG.
        validity_seconds: optional override of the certificate session.
    """
    requester = CertificateRequester(ca.curve, subject_id, rng)
    request = requester.create_request()
    if validity_seconds is None:
        issued = ca.issue(request)
    else:
        issued = ca.issue(request, validity_seconds=validity_seconds)
    return requester.process_response(issued, ca.public_key)
