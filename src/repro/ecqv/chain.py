"""Chained ECQV issuance: subordinate CAs and trust-store resolution.

A fleet sharded across several gateways gives every shard its own
certificate authority, but the fleet still needs one trust anchor: each
shard CA *enrolls at the fleet root* exactly like a device would, and its
resulting ECQV credential becomes the shard's issuing key pair.  A peer
holding only the root public key can then validate any fleet member in
two reconstruction steps::

    Q_shardCA = H(Cert_shard) * P_shard + Q_root      (root anchors shard)
    Q_device  = H(Cert_dev)   * P_dev   + Q_shardCA   (shard anchors device)

:class:`TrustStore` packages this: it holds the root public key plus the
registered intermediate (shard CA) certificates, and resolves any leaf
certificate's issuer key — validating the intermediate link, including
its :data:`~repro.ecqv.certificate.USAGE_CERT_SIGN` authorization — so
cross-shard peers can authenticate each other with no shared direct CA.

Chains are one intermediate deep (root → shard CA → device), matching the
fleet deployment; deeper hierarchies would nest the same two steps.
"""

from __future__ import annotations

from ..ec import Point
from ..ecdsa import KeyPair
from ..errors import CertificateError
from ..primitives import HmacDrbg
from .ca import CertificateAuthority, DEFAULT_VALIDITY_SECONDS
from .certificate import (
    Certificate,
    USAGE_ALL,
    USAGE_CERT_SIGN,
    authority_key_identifier,
    reconstruct_public_key,
)
from .requester import CertificateRequester
from .validation import ValidationPolicy, validate_certificate


def make_sub_ca(
    root: CertificateAuthority,
    ca_id: bytes,
    rng: HmacDrbg,
    clock=None,
    validity_seconds: int = DEFAULT_VALIDITY_SECONDS,
    authenticate_request: bool = False,
) -> tuple[CertificateAuthority, Certificate]:
    """Enroll a subordinate CA at ``root`` and return it with its cert.

    The sub-CA runs ordinary ECQV issuance against the root (its DRBG
    supplies the request ephemeral, then keeps serving the new CA's
    per-issuance ephemerals), and its certificate carries
    :data:`~repro.ecqv.certificate.USAGE_CERT_SIGN` so trust stores accept
    it as an intermediate.

    Args:
        root: the issuing (anchor) authority.
        ca_id: 16-byte identity of the new subordinate CA.
        rng: the subordinate's DRBG (enrollment + future issuance).
        clock: time source handed to the subordinate CA.
        validity_seconds: certificate session of the intermediate.
        authenticate_request: sign the enrollment request (proof of
            possession) so a ``require_signed_requests`` root accepts it.
    """
    requester = CertificateRequester(root.curve, ca_id, rng)
    issued = root.issue_batch(
        [requester.create_request(authenticate=authenticate_request)],
        validity_seconds=validity_seconds,
        key_usage=USAGE_ALL | USAGE_CERT_SIGN,
    )[0]
    credential = requester.process_response(issued, root.public_key)
    sub_ca = CertificateAuthority(
        root.curve,
        ca_id,
        rng,
        clock=clock,
        keypair=KeyPair(
            root.curve, credential.private_key, credential.public_key
        ),
    )
    return sub_ca, credential.certificate


#: Intermediates must be explicitly authorized to issue certificates.
_INTERMEDIATE_POLICY = ValidationPolicy(required_usage=USAGE_CERT_SIGN)


class TrustStore:
    """Resolves certificate issuers through ECQV intermediates to one root.

    Intermediates carry a **chain epoch**: the first certificate registered
    for a subject (a shard CA identity) is epoch 1, and every
    :meth:`replace_intermediate` — a shard CA re-provisioned after
    failure/rejoin with a fresh key pair chained to the same root — bumps
    the subject's epoch and *retires* the previous intermediate.  Leaf
    certificates issued by a retired intermediate stop resolving: the
    chain-epoch check raises instead of silently validating against a key
    the fleet has already rolled, which is what forces pre-failure
    credentials to re-enroll after a gateway rejoin.

    Args:
        root_public: the fleet root CA public key (the single anchor).
        intermediates: optional initial intermediate certificates.
    """

    def __init__(
        self,
        root_public: Point,
        intermediates: "tuple[Certificate, ...] | list[Certificate]" = (),
    ) -> None:
        self.root_public = root_public
        self.root_key_id = authority_key_identifier(root_public)
        self._intermediates: dict[bytes, Certificate] = {}
        #: subject_id -> (current authority key id, current chain epoch)
        self._subjects: dict[bytes, tuple[bytes, int]] = {}
        #: retired authority key id -> (subject_id, epoch it served as)
        self._retired: dict[bytes, tuple[bytes, int]] = {}
        for certificate in intermediates:
            self.add_intermediate(certificate)

    def _register(self, certificate: Certificate, epoch: int) -> bytes:
        own_public = reconstruct_public_key(certificate, self.root_public)
        key_id = authority_key_identifier(own_public)
        self._intermediates[key_id] = certificate
        self._subjects[certificate.subject_id] = (key_id, epoch)
        return key_id

    def add_intermediate(self, certificate: Certificate) -> None:
        """Register a root-issued intermediate (e.g. a shard CA) cert.

        The certificate must name the root as its authority; it is indexed
        by the key identifier of its *reconstructed own* public key, which
        is what leaf certificates carry in ``authority_key_id``.  The new
        intermediate starts at chain epoch 1; a subject that already holds
        a live intermediate must go through :meth:`replace_intermediate`
        so the rollover is explicit.
        """
        if certificate.authority_key_id != self.root_key_id:
            raise CertificateError(
                "intermediate certificate is not anchored at this root"
            )
        if certificate.subject_id in self._subjects:
            raise CertificateError(
                f"subject {certificate.subject_id.hex()} already holds a"
                " live intermediate; use replace_intermediate to roll it"
            )
        self._register(certificate, 1)

    def replace_intermediate(self, certificate: Certificate) -> int:
        """Roll a subject's intermediate to a fresh certificate.

        The subject's previous intermediate is retired — leaves chained
        through it raise the chain-epoch error from then on — and the new
        certificate becomes the subject's current intermediate at the next
        chain epoch, which is returned.
        """
        if certificate.authority_key_id != self.root_key_id:
            raise CertificateError(
                "intermediate certificate is not anchored at this root"
            )
        try:
            old_key_id, old_epoch = self._subjects[certificate.subject_id]
        except KeyError:
            raise CertificateError(
                f"subject {certificate.subject_id.hex()} has no live"
                " intermediate to replace"
            ) from None
        own_public = reconstruct_public_key(certificate, self.root_public)
        new_key_id = authority_key_identifier(own_public)
        if new_key_id == old_key_id:
            # Re-registering the same key would leave it both live and
            # retired at once (is_retired() true for a resolvable
            # authority — downstream re-enrollment would loop forever).
            raise CertificateError(
                "replacement intermediate reuses the retired key pair;"
                " an epoch roll must carry fresh key material"
            )
        del self._intermediates[old_key_id]
        self._retired[old_key_id] = (certificate.subject_id, old_epoch)
        self._intermediates[new_key_id] = certificate
        self._subjects[certificate.subject_id] = (new_key_id, old_epoch + 1)
        return old_epoch + 1

    def is_retired(self, authority_key_id: bytes) -> bool:
        """True if this authority key id belonged to a rolled intermediate."""
        return authority_key_id in self._retired

    def chain_epoch(self, subject_id: bytes) -> int:
        """Current chain epoch of a subject's intermediate (0 if unknown)."""
        entry = self._subjects.get(subject_id)
        return entry[1] if entry is not None else 0

    def intermediate_for(self, authority_key_id: bytes) -> Certificate:
        """The live intermediate matching an authority key id.

        Raises :class:`~repro.errors.CertificateError` both for unknown
        authorities and — with an explicit chain-epoch message — for
        authorities that were retired by :meth:`replace_intermediate`.
        """
        try:
            return self._intermediates[authority_key_id]
        except KeyError:
            pass
        if authority_key_id in self._retired:
            subject_id, epoch = self._retired[authority_key_id]
            raise CertificateError(
                f"authority {authority_key_id.hex()} was retired: subject"
                f" {subject_id.hex()} rolled past chain epoch {epoch};"
                " the leaf must re-enroll at the current intermediate"
            )
        raise CertificateError(
            f"no trust path for authority {authority_key_id.hex()}"
        ) from None

    def resolve_issuer(self, certificate: Certificate, now: int) -> Point:
        """The public key of ``certificate``'s issuer, chain-validated.

        Root-issued leaves resolve directly to the root key.  Leaves
        issued by a registered intermediate cause the intermediate's own
        certificate to be validated against the root — window, authority
        binding and the :data:`USAGE_CERT_SIGN` authorization — and its
        public key reconstructed (one ``ec.mul_point`` plus one
        ``ec.add``, the same Op2-class cost the paper prices for any
        implicit-certificate reconstruction).
        """
        if certificate.authority_key_id == self.root_key_id:
            return self.root_public
        intermediate = self.intermediate_for(certificate.authority_key_id)
        validate_certificate(
            intermediate, self.root_public, now, _INTERMEDIATE_POLICY
        )
        return reconstruct_public_key(intermediate, self.root_public)

    def resolve_and_validate(
        self,
        certificate: Certificate,
        now: int,
        policy: ValidationPolicy | None = None,
    ) -> Point:
        """Fully validate a leaf certificate and return its public key.

        Resolves the issuer through the chain, applies ``policy`` to the
        leaf, and reconstructs the leaf public key — the one-call path
        protocol code uses for peers that may live on any shard.
        """
        issuer_public = self.resolve_issuer(certificate, now)
        validate_certificate(certificate, issuer_public, now, policy)
        return reconstruct_public_key(certificate, issuer_public)
