"""ECQV implicit certificates per SEC 4 (Elliptic Curve Qu-Vanstone)."""

from .ca import (
    CertificateAuthority,
    CertificateRequest,
    DEFAULT_VALIDITY_SECONDS,
    IssuedCertificate,
)
from .certificate import (
    Certificate,
    ID_SIZE,
    PROFILE_MINIMAL,
    USAGE_ALL,
    USAGE_KEY_AGREEMENT,
    USAGE_SIGNATURE,
    authority_key_identifier,
    cert_digest_scalar,
    minimal_cert_size,
    reconstruct_public_key,
)
from .requester import CertificateRequester, EcqvCredential, issue_credential
from .validation import ValidationPolicy, validate_certificate

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CertificateRequest",
    "CertificateRequester",
    "DEFAULT_VALIDITY_SECONDS",
    "EcqvCredential",
    "ID_SIZE",
    "IssuedCertificate",
    "PROFILE_MINIMAL",
    "USAGE_ALL",
    "USAGE_KEY_AGREEMENT",
    "USAGE_SIGNATURE",
    "ValidationPolicy",
    "authority_key_identifier",
    "cert_digest_scalar",
    "issue_credential",
    "minimal_cert_size",
    "reconstruct_public_key",
    "validate_certificate",
]
