"""ECQV implicit certificates per SEC 4 (Elliptic Curve Qu-Vanstone)."""

from .ca import (
    CertificateAuthority,
    CertificateRequest,
    DEFAULT_VALIDITY_SECONDS,
    IssuedCertificate,
    REQUEST_AUTH_CONTEXT,
)
from .certificate import (
    Certificate,
    ID_SIZE,
    PROFILE_MINIMAL,
    USAGE_ALL,
    USAGE_CERT_SIGN,
    USAGE_KEY_AGREEMENT,
    USAGE_SIGNATURE,
    authority_key_identifier,
    cert_digest_scalar,
    minimal_cert_size,
    reconstruct_public_key,
)
from .chain import TrustStore, make_sub_ca
from .requester import CertificateRequester, EcqvCredential, issue_credential
from .validation import ValidationPolicy, validate_certificate

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CertificateRequest",
    "CertificateRequester",
    "DEFAULT_VALIDITY_SECONDS",
    "EcqvCredential",
    "ID_SIZE",
    "IssuedCertificate",
    "PROFILE_MINIMAL",
    "REQUEST_AUTH_CONTEXT",
    "TrustStore",
    "USAGE_ALL",
    "USAGE_CERT_SIGN",
    "USAGE_KEY_AGREEMENT",
    "USAGE_SIGNATURE",
    "ValidationPolicy",
    "authority_key_identifier",
    "cert_digest_scalar",
    "issue_credential",
    "make_sub_ca",
    "minimal_cert_size",
    "reconstruct_public_key",
    "validate_certificate",
]
