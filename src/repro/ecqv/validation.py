"""Certificate validation policy checks.

ECQV has no signature to verify — authenticity is established implicitly
when the reconstructed key is *used* — but the metadata still needs policy
validation: issuer identity, validity window, key usage and authority key
binding.  The session-establishment protocols run these checks before any
expensive EC operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ec import Point
from ..errors import CertificateError
from .certificate import Certificate, authority_key_identifier


@dataclass
class ValidationPolicy:
    """Configurable certificate acceptance policy.

    Attributes:
        trusted_issuer_ids: issuer identities we accept (empty = any).
        required_usage: key-usage bits that must all be present.
        check_validity_window: whether to enforce the time window.
        check_authority_binding: whether the embedded authority key id must
            match the CA public key we hold.
    """

    trusted_issuer_ids: set[bytes] = field(default_factory=set)
    required_usage: int = 0
    check_validity_window: bool = True
    check_authority_binding: bool = True


def validate_certificate(
    certificate: Certificate,
    ca_public: Point,
    now: int,
    policy: ValidationPolicy | None = None,
) -> None:
    """Validate certificate metadata; raises :class:`CertificateError`.

    Args:
        certificate: the peer certificate to validate.
        ca_public: the CA public key we trust.
        now: current unix time.
        policy: acceptance policy (defaults to :class:`ValidationPolicy`).
    """
    policy = policy if policy is not None else ValidationPolicy()
    if policy.trusted_issuer_ids and (
        certificate.issuer_id not in policy.trusted_issuer_ids
    ):
        raise CertificateError(
            f"untrusted issuer {certificate.issuer_id.hex()}"
        )
    if policy.check_validity_window and not certificate.is_valid_at(now):
        raise CertificateError(
            f"certificate outside validity window at t={now}"
            f" [{certificate.valid_from}, {certificate.valid_to}]"
        )
    if (certificate.key_usage & policy.required_usage) != policy.required_usage:
        raise CertificateError(
            f"certificate usage {certificate.key_usage:#04x} lacks required"
            f" bits {policy.required_usage:#04x}"
        )
    if policy.check_authority_binding:
        expected = authority_key_identifier(ca_public)
        if certificate.authority_key_id != expected:
            raise CertificateError(
                "certificate authority key id does not match trusted CA"
            )
