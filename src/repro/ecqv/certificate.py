"""ECQV implicit certificates: data model and the minimal 101-byte encoding.

An implicit certificate does not carry a signature; it carries only the
*public-key reconstruction point* ``P_U`` plus identity metadata.  Anyone
holding the CA public key reconstructs the subject's public key as

    Q_U = H(Cert_U) * P_U + Q_CA                         (paper Eq. 1)

The certificate's authenticity is implicit: only a subject that ran the
issuance protocol with the CA knows the private key matching ``Q_U``.

The paper's overhead analysis (Table II) assumes "the minimal certificate
encoding with 101 total bytes" (SEC 4 / Campagna).  Our fixed-width layout
reaches exactly 101 bytes on secp256r1:

    version(1) profile(1) curve_id(1) key_usage(1) serial(8)
    issuer_id(16) subject_id(16) valid_from(4) valid_to(4)
    authority_key_id(16) reconstruction_point(33, compressed)
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..ec import Curve, Point, curve_by_id, curve_id, decode_point, encode_point
from ..errors import CertificateError, PointDecodingError
from ..primitives import sha256
from ..utils import bytes_to_int, int_to_bytes

CERT_VERSION = 1

#: Certificate profile identifiers (one byte).
PROFILE_MINIMAL = 0x01

#: Key-usage flags (one byte, OR-able).
USAGE_KEY_AGREEMENT = 0x01
USAGE_SIGNATURE = 0x02
USAGE_ALL = USAGE_KEY_AGREEMENT | USAGE_SIGNATURE
#: The subject may itself issue certificates (a subordinate CA).  Trust
#: stores require this bit on every intermediate of a chain.
USAGE_CERT_SIGN = 0x04

ID_SIZE = 16
_FIXED_HEADER = 1 + 1 + 1 + 1 + 8 + ID_SIZE + ID_SIZE + 4 + 4 + ID_SIZE


def minimal_cert_size(curve: Curve) -> int:
    """Wire size of a minimal-profile certificate on ``curve``.

    101 bytes on secp256r1 (matching the paper's Table II assumption).
    """
    return _FIXED_HEADER + 1 + curve.field_bytes


@dataclass(frozen=True)
class Certificate:
    """An ECQV implicit certificate (minimal profile).

    Attributes:
        curve: domain parameters the reconstruction point lives on.
        serial: CA-assigned 64-bit serial number.
        issuer_id: 16-byte CA identity.
        subject_id: 16-byte subject identity.
        valid_from: inclusive validity start (unix seconds).
        valid_to: inclusive validity end (unix seconds).
        authority_key_id: 16-byte truncated hash of the CA public key.
        reconstruction_point: the public-key reconstruction point ``P_U``.
        key_usage: usage flag byte.
    """

    curve: Curve
    serial: int
    issuer_id: bytes
    subject_id: bytes
    valid_from: int
    valid_to: int
    authority_key_id: bytes
    reconstruction_point: Point
    key_usage: int = USAGE_ALL

    def __post_init__(self) -> None:
        if len(self.issuer_id) != ID_SIZE:
            raise CertificateError(f"issuer_id must be {ID_SIZE} bytes")
        if len(self.subject_id) != ID_SIZE:
            raise CertificateError(f"subject_id must be {ID_SIZE} bytes")
        if len(self.authority_key_id) != ID_SIZE:
            raise CertificateError(f"authority_key_id must be {ID_SIZE} bytes")
        if not 0 <= self.serial < (1 << 64):
            raise CertificateError("serial out of 64-bit range")
        if self.valid_from > self.valid_to:
            raise CertificateError("validity window is empty")
        if self.reconstruction_point.is_infinity:
            raise CertificateError("reconstruction point must not be infinity")
        if self.reconstruction_point.curve.name != self.curve.name:
            raise CertificateError("reconstruction point on wrong curve")

    def encode(self) -> bytes:
        """Serialize to the fixed-width minimal encoding."""
        return b"".join(
            (
                bytes([CERT_VERSION]),
                bytes([PROFILE_MINIMAL]),
                bytes([curve_id(self.curve)]),
                bytes([self.key_usage]),
                int_to_bytes(self.serial, 8),
                self.issuer_id,
                self.subject_id,
                int_to_bytes(self.valid_from, 4),
                int_to_bytes(self.valid_to, 4),
                self.authority_key_id,
                encode_point(self.reconstruction_point, compressed=True),
            )
        )

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        """Parse a minimal-profile certificate octet string."""
        if len(data) < _FIXED_HEADER + 2:
            raise CertificateError(
                f"certificate too short: {len(data)} bytes"
            )
        version, profile, cid, usage = data[0], data[1], data[2], data[3]
        if version != CERT_VERSION:
            raise CertificateError(f"unsupported certificate version {version}")
        if profile != PROFILE_MINIMAL:
            raise CertificateError(f"unsupported certificate profile {profile}")
        curve = curve_by_id(cid)
        expected = minimal_cert_size(curve)
        if len(data) != expected:
            raise CertificateError(
                f"certificate on {curve.name} must be {expected} bytes,"
                f" got {len(data)}"
            )
        offset = 4
        serial = bytes_to_int(data[offset : offset + 8]); offset += 8
        issuer_id = data[offset : offset + ID_SIZE]; offset += ID_SIZE
        subject_id = data[offset : offset + ID_SIZE]; offset += ID_SIZE
        valid_from = bytes_to_int(data[offset : offset + 4]); offset += 4
        valid_to = bytes_to_int(data[offset : offset + 4]); offset += 4
        akid = data[offset : offset + ID_SIZE]; offset += ID_SIZE
        try:
            point = decode_point(curve, data[offset:])
        except PointDecodingError as exc:
            raise CertificateError(
                f"invalid reconstruction point: {exc}"
            ) from exc
        return cls(
            curve=curve,
            serial=serial,
            issuer_id=issuer_id,
            subject_id=subject_id,
            valid_from=valid_from,
            valid_to=valid_to,
            authority_key_id=akid,
            reconstruction_point=point,
            key_usage=usage,
        )

    @property
    def wire_size(self) -> int:
        """Encoded size in bytes (101 on secp256r1)."""
        return minimal_cert_size(self.curve)

    def is_valid_at(self, timestamp: int) -> bool:
        """Check the validity window against a unix timestamp."""
        return self.valid_from <= timestamp <= self.valid_to

    def with_subject(self, subject_id: bytes) -> "Certificate":
        """Copy of this certificate with a different subject (test helper)."""
        return replace(self, subject_id=subject_id)

    def __repr__(self) -> str:
        return (
            f"Certificate(subject={self.subject_id.hex()[:8]}…,"
            f" issuer={self.issuer_id.hex()[:8]}…, serial={self.serial},"
            f" curve={self.curve.name})"
        )


def authority_key_identifier(ca_public: Point) -> bytes:
    """16-byte truncated SHA-256 of the CA public key encoding."""
    return sha256(encode_point(ca_public, compressed=True))[:ID_SIZE]


def cert_digest_scalar(cert_bytes: bytes, curve: Curve) -> int:
    """``e = H_n(Cert)``: the SEC 4 certificate hash reduced into [1, n-1].

    SEC 4 maps the certificate digest to a scalar modulo ``n``; a zero
    result is remapped to 1 so the reconstruction equation stays valid.
    """
    e = bytes_to_int(sha256(cert_bytes)) % curve.n
    return e if e != 0 else 1


def reconstruct_public_key(
    certificate: Certificate, ca_public: Point
) -> Point:
    """Reconstruct the subject public key (paper Eq. 1).

    ``Q_U = H(Cert_U) * Decode(Cert_U) + Q_CA`` — one general scalar
    multiplication plus one stand-alone point addition, which is exactly the
    cost profile the paper's Op2 prices.
    """
    if ca_public.curve.name != certificate.curve.name:
        raise CertificateError("CA public key on wrong curve")
    e = cert_digest_scalar(certificate.encode(), certificate.curve)
    from ..ec import mul_point

    return mul_point(e, certificate.reconstruction_point) + ca_public
