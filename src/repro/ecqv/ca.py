"""The ECQV certificate authority (SEC 4 §2.4 "Cert Generate").

In the paper's architecture (Fig. 1) a central, more powerful device — the
gateway / Raspberry Pi 4 in the prototype — plays the CA during stage (2),
certificate derivation.  The CA:

1. receives a request ``(U_id, R_U)`` where ``R_U = k_U * G``,
2. picks its own ephemeral ``k``, forms ``P_U = R_U + k*G``,
3. encodes the certificate over ``P_U``,
4. returns the certificate plus the private-key reconstruction data
   ``r = H(Cert) * k + d_CA (mod n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ec import Curve, Point, mul_base, mul_base_batch
from ..ecdsa import KeyPair, generate_keypair
from ..errors import CertificateError
from ..primitives import HmacDrbg
from .certificate import (
    Certificate,
    ID_SIZE,
    USAGE_ALL,
    authority_key_identifier,
    cert_digest_scalar,
)

#: Default certificate validity: one "certificate session" of 24 hours.
DEFAULT_VALIDITY_SECONDS = 24 * 3600


@dataclass(frozen=True)
class CertificateRequest:
    """A certificate request ``(U_id, R_U)`` from a device to the CA."""

    subject_id: bytes
    request_point: Point

    def __post_init__(self) -> None:
        if len(self.subject_id) != ID_SIZE:
            raise CertificateError(f"subject_id must be {ID_SIZE} bytes")
        if self.request_point.is_infinity:
            raise CertificateError("request point must not be infinity")


@dataclass(frozen=True)
class IssuedCertificate:
    """CA response: the certificate plus private-key reconstruction data."""

    certificate: Certificate
    private_reconstruction: int  # r = e*k + d_CA mod n


class CertificateAuthority:
    """An ECQV CA bound to one curve and one identity.

    Args:
        curve: domain parameters for all certificates this CA issues.
        ca_id: 16-byte CA identity (zero-padded/truncated if needed).
        rng: deterministic DRBG supplying the CA key pair and per-issuance
            ephemerals.
        clock: callable returning the current unix time; injectable so the
            simulator controls certificate sessions.
    """

    def __init__(
        self,
        curve: Curve,
        ca_id: bytes,
        rng: HmacDrbg,
        clock=None,
    ) -> None:
        if len(ca_id) != ID_SIZE:
            raise CertificateError(f"ca_id must be {ID_SIZE} bytes")
        self.curve = curve
        self.ca_id = ca_id
        self._rng = rng
        self._clock = clock if clock is not None else (lambda: 1_700_000_000)
        self.keypair: KeyPair = generate_keypair(curve, rng)
        self._serial = 0
        self.issued: dict[int, Certificate] = {}

    @property
    def public_key(self) -> Point:
        """The CA public key ``Q_CA`` every device must hold."""
        return self.keypair.public

    @property
    def authority_key_id(self) -> bytes:
        """Truncated hash of ``Q_CA`` embedded in issued certificates."""
        return authority_key_identifier(self.public_key)

    def issue(
        self,
        request: CertificateRequest,
        validity_seconds: int = DEFAULT_VALIDITY_SECONDS,
        key_usage: int = USAGE_ALL,
    ) -> IssuedCertificate:
        """Run SEC 4 Cert Generate for one request."""
        return self.issue_batch([request], validity_seconds, key_usage)[0]

    def issue_batch(
        self,
        requests,
        validity_seconds: int = DEFAULT_VALIDITY_SECONDS,
        key_usage: int = USAGE_ALL,
    ) -> list[IssuedCertificate]:
        """Run SEC 4 Cert Generate for a whole burst of requests.

        Draws one ephemeral per request up front and computes every
        ``k*G`` through :func:`~repro.ec.mul_base_batch`, so the burst
        pays a single Jacobian normalization instead of one inversion per
        certificate — the CA-side win the fleet orchestrator's enrollment
        storms exercise.  The DRBG is consumed in request order, so the
        issued certificates are byte-identical to issuing the same
        requests sequentially.
        """
        requests = list(requests)
        if validity_seconds <= 0:
            raise CertificateError("validity must be positive")
        for request in requests:
            if request.request_point.curve.name != self.curve.name:
                raise CertificateError("request point on wrong curve")
        ephemerals = [
            self._rng.random_scalar(self.curve.n) for _ in requests
        ]
        kg_points = mul_base_batch(ephemerals, self.curve)
        issued: list[IssuedCertificate] = []
        for request, k, kg in zip(requests, ephemerals, kg_points):
            # P_U = R_U + k*G : the public-key reconstruction point.
            reconstruction = request.request_point + kg
            while reconstruction.is_infinity:
                # Astronomically unlikely; SEC 4 says retry with fresh k.
                k = self._rng.random_scalar(self.curve.n)
                reconstruction = request.request_point + mul_base(
                    k, self.curve
                )
            self._serial += 1
            now = self._clock()
            cert = Certificate(
                curve=self.curve,
                serial=self._serial,
                issuer_id=self.ca_id,
                subject_id=request.subject_id,
                valid_from=now,
                valid_to=now + validity_seconds,
                authority_key_id=self.authority_key_id,
                reconstruction_point=reconstruction,
                key_usage=key_usage,
            )
            e = cert_digest_scalar(cert.encode(), self.curve)
            r = (e * k + self.keypair.private) % self.curve.n
            self.issued[cert.serial] = cert
            issued.append(
                IssuedCertificate(certificate=cert, private_reconstruction=r)
            )
        return issued
