"""The ECQV certificate authority (SEC 4 §2.4 "Cert Generate").

In the paper's architecture (Fig. 1) a central, more powerful device — the
gateway / Raspberry Pi 4 in the prototype — plays the CA during stage (2),
certificate derivation.  The CA:

1. receives a request ``(U_id, R_U)`` where ``R_U = k_U * G``,
2. picks its own ephemeral ``k``, forms ``P_U = R_U + k*G``,
3. encodes the certificate over ``P_U``,
4. returns the certificate plus the private-key reconstruction data
   ``r = H(Cert) * k + d_CA (mod n)``.

Issuance rides on ``mul_base``/``mul_base_batch``, which dispatch through
the :mod:`repro.backend` EC seam — batched CA bursts run on OpenSSL
point math under the accelerated backend, bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ec import Curve, Point, encode_point, mul_base, mul_base_batch
from ..ecdsa import KeyPair, Signature, generate_keypair, verify_batch
from ..errors import CertificateError
from ..primitives import HmacDrbg
from .certificate import (
    Certificate,
    ID_SIZE,
    USAGE_ALL,
    authority_key_identifier,
    cert_digest_scalar,
)

#: Default certificate validity: one "certificate session" of 24 hours.
DEFAULT_VALIDITY_SECONDS = 24 * 3600

#: Domain-separation prefix of the request proof-of-possession signature.
REQUEST_AUTH_CONTEXT = b"ecqv-request-v1|"


@dataclass(frozen=True)
class CertificateRequest:
    """A certificate request ``(U_id, R_U)`` from a device to the CA.

    A request may carry a proof-of-possession ``signature``: an ECDSA
    signature over :meth:`signed_payload` made with the request ephemeral
    ``k_U`` itself, verifiable against ``R_U`` as the public key.  The CA
    authenticates whole bursts of signed requests in one batched
    verification pass (:meth:`CertificateAuthority.issue_batch`).
    """

    subject_id: bytes
    request_point: Point
    signature: Signature | None = None

    def __post_init__(self) -> None:
        if len(self.subject_id) != ID_SIZE:
            raise CertificateError(f"subject_id must be {ID_SIZE} bytes")
        if self.request_point.is_infinity:
            raise CertificateError("request point must not be infinity")

    def signed_payload(self) -> bytes:
        """The byte string a proof-of-possession signature covers."""
        return (
            REQUEST_AUTH_CONTEXT
            + self.subject_id
            + encode_point(self.request_point, compressed=True)
        )


@dataclass(frozen=True)
class IssuedCertificate:
    """CA response: the certificate plus private-key reconstruction data."""

    certificate: Certificate
    private_reconstruction: int  # r = e*k + d_CA mod n


class CertificateAuthority:
    """An ECQV CA bound to one curve and one identity.

    Args:
        curve: domain parameters for all certificates this CA issues.
        ca_id: 16-byte CA identity (zero-padded/truncated if needed).
        rng: deterministic DRBG supplying the CA key pair and per-issuance
            ephemerals.
        clock: callable returning the current unix time; injectable so the
            simulator controls certificate sessions.
        keypair: optional pre-existing CA key pair.  A subordinate CA
            whose key material came out of ECQV enrollment at a root
            (:func:`~repro.ecqv.chain.make_sub_ca`) injects it here; when
            absent a fresh pair is generated from ``rng``.
        require_signed_requests: when True, :meth:`issue_batch` rejects
            any request lacking a proof-of-possession signature.
    """

    def __init__(
        self,
        curve: Curve,
        ca_id: bytes,
        rng: HmacDrbg,
        clock=None,
        keypair: KeyPair | None = None,
        require_signed_requests: bool = False,
    ) -> None:
        if len(ca_id) != ID_SIZE:
            raise CertificateError(f"ca_id must be {ID_SIZE} bytes")
        if keypair is not None and keypair.curve.name != curve.name:
            raise CertificateError("injected CA key pair on wrong curve")
        self.curve = curve
        self.ca_id = ca_id
        self._rng = rng
        self._clock = clock if clock is not None else (lambda: 1_700_000_000)
        self.keypair: KeyPair = (
            keypair if keypair is not None else generate_keypair(curve, rng)
        )
        self.require_signed_requests = require_signed_requests
        self._serial = 0
        self.issued: dict[int, Certificate] = {}

    @property
    def public_key(self) -> Point:
        """The CA public key ``Q_CA`` every device must hold."""
        return self.keypair.public

    @property
    def authority_key_id(self) -> bytes:
        """Truncated hash of ``Q_CA`` embedded in issued certificates."""
        return authority_key_identifier(self.public_key)

    def issue(
        self,
        request: CertificateRequest,
        validity_seconds: int = DEFAULT_VALIDITY_SECONDS,
        key_usage: int = USAGE_ALL,
    ) -> IssuedCertificate:
        """Run SEC 4 Cert Generate for one request."""
        return self.issue_batch([request], validity_seconds, key_usage)[0]

    def issue_batch(
        self,
        requests,
        validity_seconds: int = DEFAULT_VALIDITY_SECONDS,
        key_usage: int = USAGE_ALL,
    ) -> list[IssuedCertificate]:
        """Run SEC 4 Cert Generate for a whole burst of requests.

        Draws one ephemeral per request up front and computes every
        ``k*G`` through :func:`~repro.ec.mul_base_batch`, so the burst
        pays a single Jacobian normalization instead of one inversion per
        certificate — the CA-side win the fleet orchestrator's enrollment
        storms exercise.  The DRBG is consumed in request order, so the
        issued certificates are byte-identical to issuing the same
        requests sequentially.

        Requests carrying a proof-of-possession signature are
        authenticated first, all in one :func:`~repro.ecdsa.verify_batch`
        pass that shares a single Jacobian normalization across the whole
        queue; a failed proof aborts the burst before any ephemeral is
        drawn, so a rejected batch leaves the CA state untouched.
        """
        requests = list(requests)
        if validity_seconds <= 0:
            raise CertificateError("validity must be positive")
        for request in requests:
            if request.request_point.curve.name != self.curve.name:
                raise CertificateError("request point on wrong curve")
        self._authenticate_requests(requests)
        ephemerals = [
            self._rng.random_scalar(self.curve.n) for _ in requests
        ]
        kg_points = mul_base_batch(ephemerals, self.curve)
        issued: list[IssuedCertificate] = []
        for request, k, kg in zip(requests, ephemerals, kg_points):
            # P_U = R_U + k*G : the public-key reconstruction point.
            reconstruction = request.request_point + kg
            while reconstruction.is_infinity:
                # Astronomically unlikely; SEC 4 says retry with fresh k.
                k = self._rng.random_scalar(self.curve.n)
                reconstruction = request.request_point + mul_base(
                    k, self.curve
                )
            self._serial += 1
            now = self._clock()
            cert = Certificate(
                curve=self.curve,
                serial=self._serial,
                issuer_id=self.ca_id,
                subject_id=request.subject_id,
                valid_from=now,
                valid_to=now + validity_seconds,
                authority_key_id=self.authority_key_id,
                reconstruction_point=reconstruction,
                key_usage=key_usage,
            )
            e = cert_digest_scalar(cert.encode(), self.curve)
            r = (e * k + self.keypair.private) % self.curve.n
            self.issued[cert.serial] = cert
            issued.append(
                IssuedCertificate(certificate=cert, private_reconstruction=r)
            )
        return issued

    def _authenticate_requests(self, requests) -> None:
        """Batch-verify every signed request's proof of possession.

        The signature was made with the request ephemeral ``k_U``, so
        ``R_U`` itself is the verification key: a valid proof shows the
        requester knows the discrete log of its request point (no
        pre-existing credential needed — this is the bootstrap step).
        """
        signed = [
            (index, request)
            for index, request in enumerate(requests)
            if request.signature is not None
        ]
        if self.require_signed_requests and len(signed) != len(requests):
            missing = next(
                index
                for index, request in enumerate(requests)
                if request.signature is None
            )
            raise CertificateError(
                f"request {missing} carries no proof-of-possession signature"
            )
        if not signed:
            return
        outcomes = verify_batch(
            [
                (request.request_point, request.signed_payload(), request.signature)
                for _, request in signed
            ]
        )
        for (index, request), ok in zip(signed, outcomes):
            if not ok:
                raise CertificateError(
                    f"request {index} ({request.subject_id.hex()}) failed"
                    " proof-of-possession authentication"
                )
