"""Session timeline reconstruction — the paper's Fig. 7 experiment.

Replays a completed protocol transcript on two modelled devices joined by
the simulated CAN-FD/ISO-TP stack, producing the alternating
compute/transfer timeline the paper draws for the BMS↔EVCC prototype.
The discrete-event engine orders the segments; the device cost models
supply compute durations; the network stack supplies per-message bus
times (which come out <1 ms, matching the paper's observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..hardware.devices import DeviceModel
from ..network.stack import NetworkStack
from ..protocols.base import ProtocolTranscript, ROLE_A
from .engine import Simulator

#: Display names for STS/S-ECDSA operations, echoing Fig. 7's labels.
_DISPLAY_NAMES = {
    "xg_generation": "Request gen. (XG gen.)",
    "premaster_derivation": "Derive key",
    "pubkey_and_premaster": "Calc. PubK & Derive key",
    "pubkey_reconstruction": "Calc. PubK",
    "sign_response": "Create and Enc. Sign.",
    "verify_response": "Verify Resp.",
    "nonce_generation": "Nonce gen.",
    "sign_nonces": "Sign. gen.",
    "verify_peer_signature": "Verify Sign.",
    "static_dh_and_kdf": "Derive key",
}


@dataclass(frozen=True)
class TimelineSegment:
    """One bar of the Fig. 7 timeline."""

    actor: str  # device display name, or "bus"
    label: str
    start_ms: float
    end_ms: float
    kind: str  # "compute" | "transfer"

    @property
    def duration_ms(self) -> float:
        """Segment length."""
        return self.end_ms - self.start_ms


@dataclass
class SessionTimeline:
    """Complete reconstructed session establishment timeline."""

    protocol_name: str
    device_names: tuple[str, str]
    segments: list[TimelineSegment] = field(default_factory=list)
    total_ms: float = 0.0

    @property
    def compute_ms(self) -> float:
        """Total device computation time."""
        return sum(
            s.duration_ms for s in self.segments if s.kind == "compute"
        )

    @property
    def transfer_ms(self) -> float:
        """Total bus transfer time (the paper reports this <1 ms)."""
        return sum(
            s.duration_ms for s in self.segments if s.kind == "transfer"
        )

    def per_device_ms(self) -> dict[str, float]:
        """Compute time per device display name."""
        totals: dict[str, float] = {}
        for s in self.segments:
            if s.kind == "compute":
                totals[s.actor] = totals.get(s.actor, 0.0) + s.duration_ms
        return totals

    def render(self, width: int = 72) -> str:
        """ASCII rendering of the timeline (one row per segment)."""
        if not self.segments:
            return "(empty timeline)"
        scale = width / max(self.total_ms, 1e-9)
        lines = [
            f"{self.protocol_name.upper()} session timeline "
            f"({self.device_names[0]} <-> {self.device_names[1]}), "
            f"total {self.total_ms:.3f} ms"
        ]
        for s in self.segments:
            offset = int(s.start_ms * scale)
            length = max(1, int(s.duration_ms * scale))
            bar = " " * offset + ("#" if s.kind == "compute" else "=") * length
            lines.append(
                f"{s.actor:>8s} |{bar:<{width}}| "
                f"{s.label} ({s.duration_ms:.3f} ms)"
            )
        return "\n".join(lines)


def simulate_session_timeline(
    transcript: ProtocolTranscript,
    device_a: DeviceModel,
    device_b: DeviceModel | None = None,
    stack: NetworkStack | None = None,
    device_names: tuple[str, str] = ("BMS", "EVCC"),
    session_id: int = 1,
) -> SessionTimeline:
    """Replay a transcript as a timed two-device session (Fig. 7).

    Args:
        transcript: a completed protocol run.
        device_a: platform of the initiator (paper: BMS, S32K144).
        device_b: platform of the responder (defaults to ``device_a``).
        stack: network stack for transfer times (fresh CAN-FD default).
        device_names: display names for the two stations.
        session_id: application-layer session identifier.
    """
    if device_b is None:
        device_b = device_a
    if stack is None:
        stack = NetworkStack()
    timeline = SessionTimeline(
        protocol_name=transcript.protocol_name,
        device_names=device_names,
    )
    sim = Simulator()
    devices = {ROLE_A: device_a}
    names = {ROLE_A: device_names[0]}
    other_role = transcript.party_b.role
    devices[other_role] = device_b
    names[other_role] = device_names[1]

    def emit(actor: str, label: str, duration: float, kind: str) -> None:
        start = sim.now
        timeline.segments.append(
            TimelineSegment(
                actor=actor,
                label=label,
                start_ms=start,
                end_ms=start + duration,
                kind=kind,
            )
        )
        sim.schedule_after(duration, lambda: None)
        sim.run()

    for step in transcript.all_steps():
        device = devices[step.role]
        actor = names[step.role]
        for op in step.operations:
            duration = device.time_ms(op.cost)
            display = _DISPLAY_NAMES.get(op.name, op.name)
            emit(actor, display, duration, "compute")
        if step.message is not None:
            timing = stack.kd_transfer(
                session_id, step.message.label, step.message.payload
            )
            emit(
                "bus",
                f"{step.message.label} ({step.message.size} B)",
                timing.total_ms,
                "transfer",
            )
    timeline.total_ms = sim.now
    if not timeline.segments:
        raise SimulationError("transcript produced no timeline segments")
    return timeline
