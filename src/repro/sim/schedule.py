"""STS execution schedules: the paper's Eqs. 5–8.

§IV-C decomposes the STS run into four operations per device
(Op1 request-point generation, Op2 public-key + premaster derivation,
Op3 signature + encryption, Op4 decryption + verification) and derives
two pipelined schedules:

* sequential (Eq. 5):  τ  = Σ_i T_OpA_i + Σ_i T_OpB_i
* Opt. I (Eq. 7):      τ' = 2·T_Op1 + T_Op2 + 2·T_Op3 + 2·T_Op4
* Opt. II (Eq. 8):     τ″ = 2·T_Op1 + T_Op2 + T_Op3 + 2·T_Op4

For *non-identical* devices Eq. 6 states that an overlapped operation
contributes ``|T_OpA_x − T_OpB_x|`` extra beyond the larger side — i.e.
the pair pays ``max(A_x, B_x)`` instead of ``A_x + B_x``.  Both cases are
covered by subtracting ``min(A_x, B_x)`` from the sequential total for
each overlapped operation class, which is how this module computes them.

The paper notes the optimizations keep the transmitted data identical;
their price is flexibility (failed authentications are detected only
after the overlapped computation has already been spent — see the
Opt. II caveat in §IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..hardware.devices import DeviceModel
from ..hardware.timing import op_class_times
from ..protocols.base import Party, ProtocolTranscript
from ..protocols.sts import SCHEDULE_OPT1, SCHEDULE_OPT2, SCHEDULE_SEQUENTIAL


@dataclass(frozen=True)
class OpTimes:
    """Per-device times of the four STS operation classes (ms).

    ``sym`` collects the residual symmetric-only bookkeeping not assigned
    to Op1–Op4 (never overlapped).
    """

    op1: float
    op2: float
    op3: float
    op4: float
    sym: float = 0.0

    @property
    def total(self) -> float:
        """Sequential single-device total."""
        return self.op1 + self.op2 + self.op3 + self.op4 + self.sym


def op_times_for(party: Party, device: DeviceModel) -> OpTimes:
    """Extract the §IV-C operation times of one party on one device."""
    classes = op_class_times(party, device)
    return OpTimes(
        op1=classes.get("op1", 0.0),
        op2=classes.get("op2", 0.0),
        op3=classes.get("op3", 0.0),
        op4=classes.get("op4", 0.0),
        sym=classes.get("sym", 0.0),
    )


def sequential_total_ms(a: OpTimes, b: OpTimes) -> float:
    """Eq. 5: both stations' operations, strictly serialized."""
    return a.total + b.total


def optimized_total_ms(a: OpTimes, b: OpTimes, schedule: str) -> float:
    """Eqs. 6–8: pair total under an overlap schedule.

    Each overlapped operation class saves ``min(A_x, B_x)`` against the
    sequential total (Eq. 6's ``|A_x − B_x|`` residual for differing
    devices; full overlap for identical ones).
    """
    total = sequential_total_ms(a, b)
    if schedule == SCHEDULE_SEQUENTIAL:
        return total
    if schedule == SCHEDULE_OPT1:
        return total - min(a.op2, b.op2)
    if schedule == SCHEDULE_OPT2:
        return total - min(a.op2, b.op2) - min(a.op3, b.op3)
    raise SimulationError(f"unknown schedule {schedule!r}")


def protocol_total_ms(
    transcript: ProtocolTranscript,
    device_a: DeviceModel,
    device_b: DeviceModel | None = None,
    schedule: str | None = None,
) -> float:
    """Pair KD time under the protocol's (or an explicit) schedule.

    For STS transcripts the schedule defaults to the one the parties were
    created with; non-STS protocols are always sequential.
    """
    if device_b is None:
        device_b = device_a
    if schedule is None:
        schedule = getattr(transcript.party_a, "schedule", SCHEDULE_SEQUENTIAL)
    a = op_times_for(transcript.party_a, device_a)
    b = op_times_for(transcript.party_b, device_b)
    return optimized_total_ms(a, b, schedule)


def schedule_savings_ms(
    a: OpTimes, b: OpTimes
) -> dict[str, float]:
    """Savings of each schedule vs. sequential (positive = faster)."""
    seq = sequential_total_ms(a, b)
    return {
        SCHEDULE_SEQUENTIAL: 0.0,
        SCHEDULE_OPT1: seq - optimized_total_ms(a, b, SCHEDULE_OPT1),
        SCHEDULE_OPT2: seq - optimized_total_ms(a, b, SCHEDULE_OPT2),
    }
