"""A small discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples in a binary heap; the
sequence number makes simultaneous events fire in scheduling order, which
keeps every simulation deterministic.  The session timeline builder and
the scheduling experiments run on this engine.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class Simulator:
    """Deterministic event-driven simulator with millisecond time."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._sequence = itertools.count()
        self.now: float = 0.0
        self._events_processed = 0

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        heapq.heappush(
            self._queue, _Event(time, next(self._sequence), callback)
        )

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, callback)

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def step(self) -> bool:
        """Run the next event; returns False if the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.now = event.time
        self._events_processed += 1
        event.callback()
        return True

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> float:
        """Run until the queue drains (or ``until``); returns final time."""
        processed = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                break
            if processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events — runaway loop?"
                )
            self.step()
            processed += 1
        return self.now


class Resource:
    """A serially-reusable resource (e.g. one CPU, the CAN bus).

    Callers reserve an interval starting no earlier than ``ready_at``;
    the resource tracks when it frees up and its total busy time.

    ``record_intervals=False`` disables the per-reservation interval
    trace (an O(reservations) allocation) for constant-memory streaming
    runs; ``ready_at``/``busy_ms`` accounting — everything the
    simulated results depend on — is unaffected.
    """

    def __init__(self, name: str, record_intervals: bool = True) -> None:
        self.name = name
        self.ready_at: float = 0.0
        self.busy_ms: float = 0.0
        self.record_intervals = record_intervals
        self.intervals: list[tuple[float, float]] = []

    def reserve(self, earliest_start: float, duration: float) -> tuple[float, float]:
        """Occupy the resource; returns the (start, end) actually granted."""
        if duration < 0:
            raise SimulationError(f"negative duration {duration}")
        start = max(earliest_start, self.ready_at)
        end = start + duration
        self.ready_at = end
        self.busy_ms += duration
        if self.record_intervals:
            self.intervals.append((start, end))
        return start, end

    def utilisation(self, now: float) -> float:
        """Ratio of busy time to ``[0, now]`` for this resource.

        The contention headline number for shared resources (the fleet
        orchestrator reports it for the CA/gateway device).  Can exceed
        1.0 when reservations extend past ``now`` — an over-committed
        resource should be visible as such, not clamped away.
        """
        if now <= 0:
            return 0.0
        return self.busy_ms / now
