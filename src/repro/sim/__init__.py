"""Discrete-event simulation: engine, STS schedules, session timelines."""

from .engine import Resource, Simulator
from .schedule import (
    OpTimes,
    op_times_for,
    optimized_total_ms,
    protocol_total_ms,
    schedule_savings_ms,
    sequential_total_ms,
)
from .timeline import (
    SessionTimeline,
    TimelineSegment,
    simulate_session_timeline,
)

__all__ = [
    "OpTimes",
    "Resource",
    "SessionTimeline",
    "Simulator",
    "TimelineSegment",
    "op_times_for",
    "optimized_total_ms",
    "protocol_total_ms",
    "schedule_savings_ms",
    "sequential_total_ms",
    "simulate_session_timeline",
]
