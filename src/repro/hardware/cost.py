"""Pricing primitive-operation traces in device milliseconds.

A :class:`CostModel` maps trace event names (see :mod:`repro.trace`) to a
per-occurrence cost in milliseconds on one device.  Pricing a
:class:`~repro.trace.CostTrace` reconstructs the embedded execution time of
whatever ran under that trace — a single operation, a protocol step, or a
whole session establishment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import HardwareModelError
from ..trace import CostTrace

#: Relative cost of EC events in units of one general scalar multiplication.
#: Derived from the operation structure of a wNAF/Jacobian implementation
#: (micro-ecc-like): a Strauss-Shamir double multiplication costs ~8 % more
#: than a single multiplication; a stand-alone affine addition is ~1/290 of
#: a multiplication (one add out of ~290 add-equivalents per mult); an
#: extended-Euclid inversion ~1/25; sign/verify bookkeeping ~1/400.
EC_RELATIVE_WEIGHTS: dict[str, float] = {
    "ec.mul_point": 1.0,
    "ec.mul_base": 1.0,  # micro-ecc has no base-point precomputation
    "ec.mul_double": 1.08,
    "ec.add": 1.0 / 290.0,
    "mod.inv": 1.0 / 25.0,
    "ecdsa.sign": 1.0 / 400.0,
    "ecdsa.verify": 1.0 / 400.0,
}

#: Relative cost of symmetric events in units of one hash compression.
#: hmac.call / kdf.call / cmac.call / drbg.generate price only the
#: *bookkeeping* of those constructions — their internal hash/AES blocks
#: are traced (and priced) individually.
SYM_RELATIVE_WEIGHTS: dict[str, float] = {
    "sha2.block": 1.0,
    "aes.block": 0.35,
    "hmac.call": 0.30,
    "kdf.call": 0.40,
    "cmac.call": 0.40,
    "drbg.generate": 0.40,
    "rng.bytes": 0.002,  # per byte of requested randomness
}


@dataclass(frozen=True)
class CostModel:
    """Per-event millisecond prices for one device.

    Attributes:
        scalar_mult_ms: cost of one general EC scalar multiplication
            (the dominant term; everything EC scales from it).
        hash_block_ms: cost of one SHA-2 compression (everything symmetric
            scales from it).
        extra_ms: optional explicit per-event overrides/additions.
    """

    scalar_mult_ms: float
    hash_block_ms: float
    extra_ms: dict[str, float] = field(default_factory=dict)

    def price_of(self, event: str) -> float:
        """Millisecond price of a single occurrence of ``event``.

        Unknown events price at zero — traces may carry events (e.g.
        purely diagnostic counters) that cost nothing by themselves.
        """
        price = 0.0
        if event in EC_RELATIVE_WEIGHTS:
            price += EC_RELATIVE_WEIGHTS[event] * self.scalar_mult_ms
        if event in SYM_RELATIVE_WEIGHTS:
            price += SYM_RELATIVE_WEIGHTS[event] * self.hash_block_ms
        price += self.extra_ms.get(event, 0.0)
        return price

    def price(self, trace: CostTrace) -> float:
        """Total milliseconds for every event recorded in ``trace``."""
        return sum(
            count * self.price_of(event)
            for event, count in trace.counts.items()
        )

    def breakdown(self, trace: CostTrace) -> dict[str, float]:
        """Per-event millisecond contributions (sorted by event name)."""
        return {
            event: count * self.price_of(event)
            for event, count in sorted(trace.counts.items())
        }

    def ec_ms(self, trace: CostTrace) -> float:
        """Milliseconds attributable to elliptic-curve events only."""
        return sum(
            count * EC_RELATIVE_WEIGHTS[event] * self.scalar_mult_ms
            for event, count in trace.counts.items()
            if event in EC_RELATIVE_WEIGHTS
        )

    def sym_ms(self, trace: CostTrace) -> float:
        """Milliseconds attributable to symmetric-crypto events only."""
        return self.price(trace) - self.ec_ms(trace) - sum(
            count * self.extra_ms.get(event, 0.0)
            for event, count in trace.counts.items()
        )

    def validate(self) -> None:
        """Sanity-check the model parameters."""
        if self.scalar_mult_ms <= 0:
            raise HardwareModelError(
                f"scalar_mult_ms must be positive, got {self.scalar_mult_ms}"
            )
        if self.hash_block_ms < 0:
            raise HardwareModelError(
                f"hash_block_ms must be non-negative, got {self.hash_block_ms}"
            )


def ec_units(trace: CostTrace) -> float:
    """EC work in units of one scalar multiplication (device-independent).

    This is the quantity the calibration fit uses: for a protocol trace,
    ``time ≈ scalar_mult_ms * ec_units + sym time``.
    """
    return sum(
        count * weight
        for event, weight in EC_RELATIVE_WEIGHTS.items()
        if (count := trace.counts.get(event, 0))
    )


def sym_units(trace: CostTrace) -> float:
    """Symmetric work in units of one hash compression."""
    return sum(
        count * weight
        for event, weight in SYM_RELATIVE_WEIGHTS.items()
        if (count := trace.counts.get(event, 0))
    )
