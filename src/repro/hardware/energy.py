"""Energy estimation (stand-in for the paper's Nordic PPK2 measurements).

The paper measured protocol runs with system ticks *and* a Nordic Power
Profiler Kit II.  We reconstruct the energy figure as active power
integrated over modelled execution time — sufficient for the relative
comparisons the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..protocols.base import ProtocolTranscript
from .devices import DeviceModel
from .timing import party_time_ms


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy consumption of one protocol run on a device pair.

    Attributes:
        protocol_name: registry name of the protocol.
        device_a / device_b: the two station platforms.
        ms_a / ms_b: per-station compute times.
        mj_a / mj_b: per-station energy in millijoules.
    """

    protocol_name: str
    device_a: str
    device_b: str
    ms_a: float
    ms_b: float
    mj_a: float
    mj_b: float

    @property
    def total_mj(self) -> float:
        """Combined pair energy."""
        return self.mj_a + self.mj_b

    @property
    def total_ms(self) -> float:
        """Combined sequential pair time."""
        return self.ms_a + self.ms_b


def estimate_energy(
    transcript: ProtocolTranscript,
    device_a: DeviceModel,
    device_b: DeviceModel | None = None,
) -> EnergyEstimate:
    """Estimate the energy of a completed protocol run."""
    if device_b is None:
        device_b = device_a
    ms_a = party_time_ms(transcript.party_a, device_a)
    ms_b = party_time_ms(transcript.party_b, device_b)
    return EnergyEstimate(
        protocol_name=transcript.protocol_name,
        device_a=device_a.name,
        device_b=device_b.name,
        ms_a=ms_a,
        ms_b=ms_b,
        mj_a=device_a.active_power_mw * ms_a / 1_000.0,
        mj_b=device_b.active_power_mw * ms_b / 1_000.0,
    )
