"""Hardware security modules and crypto accelerators (paper future work).

The paper closes with: *"For future work, we plan to investigate the
influence of security modules and hardware accelerators when considering
the implicit certificate protocols on embedded devices, especially those
related to session establishment."*  This module implements that study.

An :class:`Accelerator` rescales the per-event prices of a base device
model: an ECC accelerator divides the scalar-multiplication cost, an AES
engine divides the block cost, a hash engine the compression cost.  The
presets follow typical datasheet ratios:

* ``SHE_AES`` — an AUTOSAR SHE-style module: hardware AES (~20×), no
  public-key support.  Helps the symmetric-auth baselines, barely moves
  the EC-dominated protocols.
* ``ECC_ACCEL`` — a dedicated ECC coprocessor (~10× on scalar
  multiplications, as on e.g. an NXP S32K3 HSE or an STM32 PKA).
* ``FULL_HSM`` — EVITA-full-style HSM: ECC ~10×, AES ~20×, SHA ~10×.

The ablation benchmark (``benchmarks/bench_ablation_accelerators.py``)
regenerates Table I under each preset and reports how the protocol
ordering and the STS overhead change — the question the paper poses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import HardwareModelError
from .cost import CostModel
from .devices import DeviceModel


@dataclass(frozen=True)
class Accelerator:
    """A crypto offload engine described by per-class speedup factors.

    Attributes:
        name: preset identifier.
        description: what the engine models.
        ec_speedup: divisor on EC scalar-multiplication cost (≥ 1).
        aes_speedup: divisor on AES block cost (≥ 1).
        hash_speedup: divisor on hash compression cost (≥ 1).
        fixed_call_overhead_ms: per-EC-operation driver/marshalling cost
            added on top (accelerators are not free to invoke).
    """

    name: str
    description: str
    ec_speedup: float = 1.0
    aes_speedup: float = 1.0
    hash_speedup: float = 1.0
    fixed_call_overhead_ms: float = 0.0

    def __post_init__(self) -> None:
        if min(self.ec_speedup, self.aes_speedup, self.hash_speedup) < 1.0:
            raise HardwareModelError(
                f"{self.name}: speedups must be >= 1 (they are divisors)"
            )
        if self.fixed_call_overhead_ms < 0:
            raise HardwareModelError(
                f"{self.name}: negative call overhead"
            )


NO_ACCELERATOR = Accelerator(
    name="none",
    description="software-only baseline (the paper's configuration)",
)

SHE_AES = Accelerator(
    name="she-aes",
    description="AUTOSAR SHE-style module: hardware AES/CMAC only",
    aes_speedup=20.0,
)

ECC_ACCEL = Accelerator(
    name="ecc-accel",
    description="dedicated ECC coprocessor (PKA-style, ~10x scalar mult)",
    ec_speedup=10.0,
    fixed_call_overhead_ms=0.05,
)

FULL_HSM = Accelerator(
    name="full-hsm",
    description="EVITA-full HSM: ECC ~10x, AES ~20x, SHA ~10x",
    ec_speedup=10.0,
    aes_speedup=20.0,
    hash_speedup=10.0,
    fixed_call_overhead_ms=0.05,
)

ACCELERATORS: dict[str, Accelerator] = {
    a.name: a for a in (NO_ACCELERATOR, SHE_AES, ECC_ACCEL, FULL_HSM)
}

#: Events that count as one accelerator *call* for the overhead term.
_EC_CALL_EVENTS = ("ec.mul_point", "ec.mul_base", "ec.mul_double")


def accelerate(device: DeviceModel, accelerator: Accelerator) -> DeviceModel:
    """Derive a new device model with the accelerator attached.

    The returned model's name is suffixed (``stm32f767+full-hsm``) so it
    can live alongside the base model in result tables.
    """
    base = device.cost
    extra = dict(base.extra_ms)
    # AES has no dedicated scale parameter: express the speedup as a
    # negative extra (price_of adds extras after the weight tables).
    if accelerator.aes_speedup > 1.0:
        software_price = 0.35 * base.hash_block_ms / accelerator.hash_speedup
        accelerated_price = 0.35 * base.hash_block_ms / (
            accelerator.hash_speedup * accelerator.aes_speedup
        )
        extra["aes.block"] = accelerated_price - software_price
    if accelerator.fixed_call_overhead_ms > 0:
        for event in _EC_CALL_EVENTS:
            extra[event] = (
                extra.get(event, 0.0) + accelerator.fixed_call_overhead_ms
            )
    # The EC weight table scales everything EC from scalar_mult_ms, so an
    # EC speedup is a straight division of that parameter.
    new_cost = CostModel(
        scalar_mult_ms=base.scalar_mult_ms / accelerator.ec_speedup,
        hash_block_ms=base.hash_block_ms / accelerator.hash_speedup,
        extra_ms=extra,
    )
    return replace(
        device,
        name=f"{device.name}+{accelerator.name}",
        label=f"{device.label}+{accelerator.name}",
        cost=new_cost,
    )


def accelerator_study(
    device: DeviceModel,
    protocols: tuple[str, ...] = ("s-ecdsa", "sts", "sts-opt2", "scianc", "poramb"),
    seed: bytes = b"repro-accelerators",
) -> dict[str, dict[str, float]]:
    """Table I under every accelerator preset (the future-work study).

    Returns ``{accelerator: {protocol: pair_ms}}`` for one base device.
    """
    from ..protocols import run_protocol
    from ..sim.schedule import protocol_total_ms
    from ..testbed import make_testbed

    testbed = make_testbed(seed=seed)
    transcripts = {}
    for protocol in protocols:
        party_a, party_b = testbed.party_pair(protocol, "alice", "bob")
        transcripts[protocol] = run_protocol(party_a, party_b)
    results: dict[str, dict[str, float]] = {}
    for accelerator in ACCELERATORS.values():
        model = accelerate(device, accelerator)
        results[accelerator.name] = {
            protocol: protocol_total_ms(transcripts[protocol], model)
            for protocol in protocols
        }
    return results


def render_accelerator_study(
    study: dict[str, dict[str, float]], device_label: str
) -> str:
    """ASCII table of the accelerator ablation."""
    protocols = list(next(iter(study.values())))
    lines = [
        f"KD execution time on {device_label} with crypto offload (ms)",
        f"{'Accelerator':12s}" + "".join(f"{p:>12s}" for p in protocols)
        + f"{'STS/S-ECDSA':>14s}",
    ]
    for accel_name, row in study.items():
        ratio = row["sts"] / row["s-ecdsa"]
        lines.append(
            f"{accel_name:12s}"
            + "".join(f"{row[p]:12.2f}" for p in protocols)
            + f"{ratio:14.3f}"
        )
    return "\n".join(lines)
