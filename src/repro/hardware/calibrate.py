"""Calibration of device models against the paper's Table I.

The model is deliberately minimal: for a protocol whose pair trace
contains EC work ``e`` (in scalar-multiplication units, see
:func:`repro.hardware.cost.ec_units`) and symmetric work ``s`` (in hash
compressions), the predicted run time on a device is::

    T_pred = M * e + H * s

``H`` (hash-block ms) is fixed per device from cycle-count estimates of
software SHA-256 on that core; ``M`` (scalar-mult ms) is fitted by
weighted least squares over the four directly-measured Table I rows
(S-ECDSA, STS, SCIANC, PORAMB — the opt. rows are *schedules*, not new
computations, and S-ECDSA-ext differs only symmetrically), minimizing
relative error::

    M* = Σ w_i (p_i - H s_i) e_i / Σ w_i e_i²,   w_i = 1 / p_i²

The resulting constants are frozen into :mod:`repro.hardware.devices`;
the test suite re-runs this fit and asserts the frozen values match.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError
from ..trace import CostTrace
from .cost import ec_units, sym_units

#: Table I of the paper: total KD execution time in milliseconds
#: (mean over 10 runs; the ± spreads are reproduced in PAPER_TABLE1_STDDEV).
PAPER_TABLE1: dict[str, dict[str, float]] = {
    "s-ecdsa": {
        "atmega2560": 36859.26, "s32k144": 2894.10,
        "stm32f767": 2521.77, "rpi4": 18.76,
    },
    "s-ecdsa-ext": {
        "atmega2560": 36882.64, "s32k144": 2976.20,
        "stm32f767": 2602.69, "rpi4": 18.68,
    },
    "sts": {
        "atmega2560": 46262.03, "s32k144": 3622.71,
        "stm32f767": 3162.07, "rpi4": 23.26,
    },
    "sts-opt1": {
        "atmega2560": 41680.23, "s32k144": 3246.55,
        "stm32f767": 2818.02, "rpi4": 20.87,
    },
    "sts-opt2": {
        "atmega2560": 32410.81, "s32k144": 2556.84,
        "stm32f767": 2219.25, "rpi4": 16.31,
    },
    "scianc": {
        "atmega2560": 8990.49, "s32k144": 721.67,
        "stm32f767": 628.10, "rpi4": 4.58,
    },
    "poramb": {
        "atmega2560": 17932.17, "s32k144": 1471.66,
        "stm32f767": 1263.00, "rpi4": 8.98,
    },
}

#: Table I ± spreads (ms), kept for completeness of the record.
PAPER_TABLE1_STDDEV: dict[str, dict[str, float]] = {
    "s-ecdsa": {"atmega2560": 0.18, "s32k144": 9.83, "stm32f767": 5.87, "rpi4": 0.11},
    "s-ecdsa-ext": {"atmega2560": 0.23, "s32k144": 11.56, "stm32f767": 8.61, "rpi4": 0.12},
    "sts": {"atmega2560": 0.13, "s32k144": 7.034, "stm32f767": 7.52, "rpi4": 0.12},
    "sts-opt1": {"atmega2560": 1.2, "s32k144": 12.97, "stm32f767": 11.26, "rpi4": 0.07},
    "sts-opt2": {"atmega2560": 1.14, "s32k144": 13.13, "stm32f767": 11.3, "rpi4": 0.07},
    "scianc": {"atmega2560": 0.03, "s32k144": 0.28, "stm32f767": 0.32, "rpi4": 0.02},
    "poramb": {"atmega2560": 0.05, "s32k144": 0.63, "stm32f767": 0.42, "rpi4": 0.04},
}

#: Protocol rows used by the fit (directly measured, schedule-free).
CALIBRATION_PROTOCOLS = ("s-ecdsa", "sts", "scianc", "poramb")

#: Per-device hash-compression cost in ms (software SHA-256 estimates:
#: ~20k cycles on the 8-bit AVR, ~4k on the M4F, ~3k on the M7, ~1.5k on
#: the A72).
HASH_BLOCK_MS: dict[str, float] = {
    "atmega2560": 1.25,
    "s32k144": 0.05,
    "stm32f767": 0.014,
    "rpi4": 0.001,
}


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of fitting one device.

    Attributes:
        device_name: Table I column.
        scalar_mult_ms: fitted ``M``.
        hash_block_ms: fixed ``H`` used during the fit.
        residuals: per-protocol relative error of the fitted model.
    """

    device_name: str
    scalar_mult_ms: float
    hash_block_ms: float
    residuals: dict[str, float]


def protocol_pair_traces(seed: bytes = b"repro-calibration") -> dict[str, CostTrace]:
    """Run each calibration protocol once and return its pair trace."""
    from ..protocols import run_protocol
    from ..testbed import make_testbed

    testbed = make_testbed(seed=seed)
    traces: dict[str, CostTrace] = {}
    for name in CALIBRATION_PROTOCOLS:
        party_a, party_b = testbed.party_pair(name, "alice", "bob")
        run_protocol(party_a, party_b)
        pair = CostTrace(name)
        pair.merge(party_a.total_cost())
        pair.merge(party_b.total_cost())
        traces[name] = pair
    return traces


def fit_device(
    device_name: str,
    traces: dict[str, CostTrace] | None = None,
) -> CalibrationResult:
    """Fit ``scalar_mult_ms`` for one device against Table I."""
    if device_name not in HASH_BLOCK_MS:
        raise HardwareModelError(f"no calibration data for {device_name!r}")
    if traces is None:
        traces = protocol_pair_traces()
    hash_ms = HASH_BLOCK_MS[device_name]
    numerator = denominator = 0.0
    for protocol in CALIBRATION_PROTOCOLS:
        paper_ms = PAPER_TABLE1[protocol][device_name]
        e = ec_units(traces[protocol])
        s = sym_units(traces[protocol]) * hash_ms
        weight = 1.0 / (paper_ms * paper_ms)
        numerator += weight * (paper_ms - s) * e
        denominator += weight * e * e
    if denominator == 0:
        raise HardwareModelError("calibration traces contain no EC work")
    fitted = numerator / denominator
    residuals = {}
    for protocol in CALIBRATION_PROTOCOLS:
        paper_ms = PAPER_TABLE1[protocol][device_name]
        predicted = fitted * ec_units(traces[protocol]) + hash_ms * sym_units(
            traces[protocol]
        )
        residuals[protocol] = predicted / paper_ms - 1.0
    return CalibrationResult(
        device_name=device_name,
        scalar_mult_ms=fitted,
        hash_block_ms=hash_ms,
        residuals=residuals,
    )


def fit_all_devices() -> dict[str, CalibrationResult]:
    """Fit every Table I device (one shared set of protocol traces)."""
    traces = protocol_pair_traces()
    return {name: fit_device(name, traces) for name in HASH_BLOCK_MS}
