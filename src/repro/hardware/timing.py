"""Timing reconstruction: from protocol traces to device milliseconds.

Bridges the protocol layer (parties with per-operation cost traces) and
the device models.  Provides the aggregations each experiment needs:

* per-operation times — Fig. 3 (STS Op1–Op4 on the STM32F767),
* per-party and pair totals — Table I / Fig. 4,
* per-step times — input for the Fig. 7 timeline simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError
from ..protocols.base import Party, ProtocolTranscript
from ..trace import CostTrace
from .devices import DeviceModel


@dataclass(frozen=True)
class TimedOperation:
    """One protocol operation priced on a device."""

    role: str
    step_label: str
    name: str
    op_class: str
    ms: float


def party_operations(party: Party, device: DeviceModel) -> list[TimedOperation]:
    """Every operation a party performed, priced on ``device``."""
    timed: list[TimedOperation] = []
    for record in party.records:
        for op in record.operations:
            timed.append(
                TimedOperation(
                    role=party.role,
                    step_label=record.label,
                    name=op.name,
                    op_class=op.op_class,
                    ms=device.time_ms(op.cost),
                )
            )
    return timed


def party_time_ms(party: Party, device: DeviceModel) -> float:
    """Total compute time of one party on ``device``."""
    return device.time_ms(party.total_cost())


def pair_time_ms(
    transcript: ProtocolTranscript,
    device_a: DeviceModel,
    device_b: DeviceModel | None = None,
) -> float:
    """Total sequential KD execution time for a device pair.

    This is the paper's Eq. 5 (sum over both stations' operations) and the
    quantity Table I reports.  ``device_b`` defaults to ``device_a``
    (identical devices, as in the paper's per-board measurements).
    """
    if device_b is None:
        device_b = device_a
    return party_time_ms(transcript.party_a, device_a) + party_time_ms(
        transcript.party_b, device_b
    )


def op_class_times(party: Party, device: DeviceModel) -> dict[str, float]:
    """Aggregate per-operation-class times (op1..op4, sym) for one party.

    On the STS protocol this is exactly the paper's §IV-C decomposition;
    Fig. 3 plots these for the STM32F767.
    """
    totals: dict[str, float] = {}
    for op in party_operations(party, device):
        totals[op.op_class] = totals.get(op.op_class, 0.0) + op.ms
    return totals


def op_class_trace(party: Party, op_class: str) -> CostTrace:
    """Merged cost trace of every operation in one class."""
    merged = CostTrace(f"{party.protocol_name}:{party.role}:{op_class}")
    for record in party.records:
        for op in record.operations:
            if op.op_class == op_class:
                merged.merge(op.cost)
    return merged


def step_times(party: Party, device: DeviceModel) -> list[tuple[str, float]]:
    """Per-step compute times, in execution order (Fig. 7 raw material)."""
    result: list[tuple[str, float]] = []
    for record in party.records:
        total = sum(device.time_ms(op.cost) for op in record.operations)
        result.append((record.label, total))
    return result


def validate_devices_match_calibration(tolerance: float = 1e-3) -> None:
    """Assert the frozen device constants equal a fresh calibration fit.

    Raises :class:`HardwareModelError` if :mod:`repro.hardware.devices`
    has drifted from what :mod:`repro.hardware.calibrate` derives — the
    guard the test suite runs so the two never diverge silently.
    """
    from .calibrate import fit_all_devices
    from .devices import DEVICES

    for name, result in fit_all_devices().items():
        frozen = DEVICES[name].cost.scalar_mult_ms
        if abs(frozen - result.scalar_mult_ms) / result.scalar_mult_ms > tolerance:
            raise HardwareModelError(
                f"{name}: frozen scalar_mult_ms {frozen} differs from fitted"
                f" {result.scalar_mult_ms:.3f} by more than {tolerance:%}"
            )
