"""Calibrated device models for the paper's four evaluation boards.

Performance groups (paper §V-A):

* **Low-end** — Arduino ATmega2560, 8-bit AVR @ 16 MHz
* **Mid-tier** — NXP S32K144, Cortex-M4F @ 80 MHz;
  ST STM32F767, Cortex-M7 @ 216 MHz
* **High-end** — Raspberry Pi 4, Cortex-A72 @ 1.5 GHz

``scalar_mult_ms`` (the cost of one P-256 scalar multiplication in the
paper's C stack) is **fitted** against Table I with weighted least squares
over the four directly-measured protocol rows; the derivation lives in
:mod:`repro.hardware.calibrate` and is re-checked by the test suite.  The
symmetric block costs are set from cycle-count estimates of software
SHA-256/AES on each core.  With a single fitted parameter per device the
model lands within ±6 % of every Table I anchor cell.

Power figures (used by the energy estimator, standing in for the paper's
Nordic PPK2 measurements) are typical active-mode values for each board.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError
from ..trace import CostTrace
from .cost import CostModel


@dataclass(frozen=True)
class DeviceModel:
    """One embedded evaluation platform.

    Attributes:
        name: registry key (``"stm32f767"`` …).
        label: display name used in tables (``"STM32F767"``).
        cpu: core description.
        clock_mhz: nominal core clock.
        word_bits: native word width (drives the big-number cost asymmetry
            between the 8-bit AVR and the 32/64-bit ARMs).
        performance_class: ``"low-end" | "mid-tier" | "high-end"``.
        cost: calibrated per-event price model.
        active_power_mw: board-level active power draw.
    """

    name: str
    label: str
    cpu: str
    clock_mhz: float
    word_bits: int
    performance_class: str
    cost: CostModel
    active_power_mw: float

    def time_ms(self, trace: CostTrace) -> float:
        """Execution time of a traced computation on this device."""
        return self.cost.price(trace)

    def energy_mj(self, trace: CostTrace) -> float:
        """Energy (millijoules) for a traced computation.

        ``E = P_active * t`` — the quantity a PPK2 power profiler would
        integrate over the operation window.
        """
        return self.active_power_mw * self.time_ms(trace) / 1_000.0


ATMEGA2560 = DeviceModel(
    name="atmega2560",
    label="ATMega2560",
    cpu="AVR 8-bit (Arduino Mega)",
    clock_mhz=16.0,
    word_bits=8,
    performance_class="low-end",
    cost=CostModel(scalar_mult_ms=4259.912, hash_block_ms=1.25),
    active_power_mw=90.0,
)

S32K144 = DeviceModel(
    name="s32k144",
    label="S32K144",
    cpu="ARM Cortex-M4F",
    clock_mhz=80.0,
    word_bits=32,
    performance_class="mid-tier",
    cost=CostModel(scalar_mult_ms=341.588, hash_block_ms=0.05),
    active_power_mw=160.0,
)

STM32F767 = DeviceModel(
    name="stm32f767",
    label="STM32F767",
    cpu="ARM Cortex-M7",
    clock_mhz=216.0,
    word_bits=32,
    performance_class="mid-tier",
    cost=CostModel(scalar_mult_ms=297.245, hash_block_ms=0.014),
    active_power_mw=480.0,
)

RASPBERRY_PI4 = DeviceModel(
    name="rpi4",
    label="RaspberryPi 4",
    cpu="ARM Cortex-A72 (64-bit)",
    clock_mhz=1500.0,
    word_bits=64,
    performance_class="high-end",
    cost=CostModel(scalar_mult_ms=2.143, hash_block_ms=0.001),
    active_power_mw=4000.0,
)

#: Device registry in the column order of Table I.
DEVICES: dict[str, DeviceModel] = {
    d.name: d for d in (ATMEGA2560, S32K144, STM32F767, RASPBERRY_PI4)
}

#: Column order used by Table I reproductions.
TABLE_DEVICE_ORDER = ("atmega2560", "s32k144", "stm32f767", "rpi4")


def get_device(name: str) -> DeviceModel:
    """Look up a device model by name."""
    try:
        return DEVICES[name]
    except KeyError:
        raise HardwareModelError(
            f"unknown device {name!r}; known: {sorted(DEVICES)}"
        ) from None
