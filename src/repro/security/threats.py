"""Threat and countermeasure definitions (paper §IV-A and Fig. 8).

The design targets five threats against two assets:

* assets — session data, security credentials;
* threats — T1 past data exposure, T2 man-in-the-middle, T3 node
  capturing, T4 key data reuse, T5 key derivation exploitation;
* countermeasures (STS-ECQV) — C1 forward secrecy, C2 ECDSA
  authentication, C3 the combined STS & ECQV construction; node capture
  is only partially covered (the "R" box of Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Asset(Enum):
    """System assets the design protects (paper §IV-A)."""

    SESSION_DATA = "Session Data"
    SECURITY_CREDENTIALS = "Security Credentials"


@dataclass(frozen=True)
class Threat:
    """One threat from the paper's model."""

    key: str
    title: str
    description: str
    assets: tuple[Asset, ...]


@dataclass(frozen=True)
class Countermeasure:
    """One countermeasure provided by the STS-ECQV design."""

    key: str
    title: str
    description: str


T1 = Threat(
    key="T1",
    title="Past Data Exposure",
    description=(
        "Recorded traffic of earlier sessions becomes readable once a "
        "long-term key leaks, because the session keys can be recomputed."
    ),
    assets=(Asset.SESSION_DATA,),
)

T2 = Threat(
    key="T2",
    title="MitM Attacks",
    description=(
        "An active adversary inserts itself into session establishment, "
        "including key-compromise-impersonation (KCI) variants."
    ),
    assets=(Asset.SESSION_DATA, Asset.SECURITY_CREDENTIALS),
)

T3 = Threat(
    key="T3",
    title="Node Capture",
    description=(
        "A legitimate device is physically compromised and its stored "
        "credentials (keys, certificates, PSKs) extracted."
    ),
    assets=(Asset.SESSION_DATA, Asset.SECURITY_CREDENTIALS),
)

T4 = Threat(
    key="T4",
    title="Key Data Reuse",
    description=(
        "The same underlying secret feeds multiple communication "
        "sessions, so one exposure spans many sessions."
    ),
    assets=(Asset.SESSION_DATA,),
)

T5 = Threat(
    key="T5",
    title="Key Derivation Exploitation",
    description=(
        "The derivation process itself is exploitable: insufficient "
        "entropy, derivable inputs, or keys recoverable by parties that "
        "should not hold them."
    ),
    assets=(Asset.SESSION_DATA, Asset.SECURITY_CREDENTIALS),
)

C1 = Countermeasure(
    key="C1",
    title="Forward Secrecy",
    description=(
        "Fresh ephemeral STS exponents per communication session; "
        "compromise of long-term keys does not reveal past session keys."
    ),
)

C2 = Countermeasure(
    key="C2",
    title="ECDSA Authentication",
    description=(
        "Mutual authentication by ECDSA signatures over the session "
        "ephemerals, verified against implicitly-reconstructed keys."
    ),
)

C3 = Countermeasure(
    key="C3",
    title="STS & ECQV Property",
    description=(
        "The combined construction: signatures encrypted under the fresh "
        "session key bind key agreement and authentication together."
    ),
)

THREATS: dict[str, Threat] = {t.key: t for t in (T1, T2, T3, T4, T5)}
COUNTERMEASURES: dict[str, Countermeasure] = {
    c.key: c for c in (C1, C2, C3)
}

#: Fig. 8 edges: which countermeasures answer which threats for STS-ECQV.
#: T3 maps to the partial-protection node "R" (past sessions only).
MITIGATIONS: dict[str, tuple[str, ...]] = {
    "T1": ("C1",),
    "T2": ("C2", "C3"),
    "T3": ("R",),
    "T4": ("C1", "C3"),
    "T5": ("C1", "C2", "C3"),
}

#: Which threats target which assets (Fig. 8 left-hand edges).
THREATS_ON_ASSETS: dict[str, tuple[str, ...]] = {
    Asset.SESSION_DATA.value: ("T1", "T2", "T4", "T5"),
    Asset.SECURITY_CREDENTIALS.value: ("T2", "T3", "T5"),
}

#: The fleet-scale adversarial injections
#: (:mod:`repro.fleet.scenario`) mapped onto this threat model: which
#: paper threats each injection exercises against a *live sharded
#: fleet* rather than a single recorded session.  ``replay-storm``
#: replays recorded session data at a gateway (an active MitM move
#: against session data, testing whether old key material buys the
#: adversary anything — T2/T4); ``stale-cert-flood`` presents
#: credentials whose issuing epoch died with a captured/failed gateway
#: (T3 credential misuse, T5 exploiting the derivation chain);
#: ``ca-flood`` feeds the key-derivation bootstrap forged
#: proof-of-possession requests (T2 active insertion, T5 exploiting
#: issuance).  The scenario engine asserts all of them are rejected
#: with zero successful forgeries.
FLEET_INJECTION_THREATS: dict[str, tuple[str, ...]] = {
    "replay-storm": ("T2", "T4"),
    "stale-cert-flood": ("T3", "T5"),
    "ca-flood": ("T2", "T5"),
}
