"""Executable attack simulations against the four KD protocols.

Table III of the paper is a judgement matrix; this module backs it with
*runnable* attacks on real protocol transcripts:

* :func:`record_then_compromise` — the forward-secrecy test (T1): a
  passive adversary records the KD exchange and the encrypted session
  traffic, later obtains the devices' long-term credentials, and tries to
  recompute the session key from wire data + long-term keys alone.
  Succeeds against every SKD protocol, fails against STS.
* :func:`key_reuse_across_sessions` — T4: runs several sessions under the
  same certificates and recovers (attacker-style) the underlying secret
  of each; SKD protocols reuse one secret, STS never repeats.
* :func:`node_capture` — T3: past traffic exposure after capturing a
  device (SKD exposed / STS protected) and the unavoidable future
  impersonation with stolen credentials (all protocols, hence the
  paper's "no algorithm is fully protected" note).
* :func:`kci_impersonation` — the T2/T5 variant: with A's long-term key,
  can the adversary compute the key A will derive with B and thereby
  impersonate B to A?  Succeeds against the symmetric-auth baselines
  (their session keys and MACs are derivable from one side's long-term
  key), fails against the signature-based ones.
* :func:`mitm_without_credentials` — plain T2: an outsider with a forged
  (non-CA-issued) certificate attempts the handshake; ECQV implicitness
  makes the reconstructed key useless to the forger, so all four
  protocols reject.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ec import Point, mul_double, mul_point
from ..ecqv import Certificate, cert_digest_scalar, reconstruct_public_key
from ..errors import AnalysisError, AuthenticationError, ProtocolError
from ..protocols import (
    ProtocolTranscript,
    SecureSession,
    get_protocol,
    open_record_with_key,
    run_protocol,
)
from ..protocols.wire import derive_session_key, enc_key, mac_key
from ..testbed import TestBed
from ..utils import int_to_bytes

#: Plaintexts exchanged over the established session in every scenario.
CHAT_PLAINTEXTS = (
    b"battery cell voltages: 3.91 3.92 3.90 3.93",
    b"request: state of charge",
    b"soc=87% soh=98% temp=24C",
)


@dataclass
class RecordedScenario:
    """Everything a passive wire adversary observes in one session."""

    protocol_name: str
    transcript: ProtocolTranscript
    app_records: list[bytes]
    plaintexts: tuple[bytes, ...]
    session_key: bytes  # ground truth, never given to the adversary


@dataclass
class CompromisedMaterial:
    """Long-term material an adversary obtains *after* the recording.

    Contains exactly what a device stores across sessions: the ECQV
    private keys, certificates, the CA public key and (for PORAMB) the
    pairwise pre-shared keys — but **no ephemerals**, which are erased at
    session end.
    """

    private_keys: dict[bytes, int]  # subject id -> d
    certificates: dict[bytes, Certificate]
    ca_public: Point
    pre_shared_keys: dict[bytes, bytes] = field(default_factory=dict)


@dataclass
class AttackResult:
    """Outcome of one attack execution."""

    attack: str
    protocol_name: str
    success: bool
    detail: str
    recovered_plaintexts: list[bytes] = field(default_factory=list)


def run_recorded_scenario(
    testbed: TestBed, protocol_name: str, n_messages: int = 3
) -> tuple[RecordedScenario, CompromisedMaterial]:
    """Run one session plus app traffic; return the wire view + secrets."""
    ctx_a, ctx_b = testbed.context_pair("alice", "bob", protocol_name)
    party_a, party_b = get_protocol(protocol_name).factory(ctx_a, ctx_b)
    transcript = run_protocol(party_a, party_b)
    session_a = SecureSession(party_a.session_key, "A")
    session_b = SecureSession(party_b.session_key, "B")
    records: list[bytes] = []
    plaintexts = CHAT_PLAINTEXTS[:n_messages]
    for i, plaintext in enumerate(plaintexts):
        sender, receiver = (
            (session_a, session_b) if i % 2 == 0 else (session_b, session_a)
        )
        record = sender.encrypt(plaintext)
        if receiver.decrypt(record) != plaintext:
            raise AnalysisError("scenario self-check failed")
        records.append(record)
    scenario = RecordedScenario(
        protocol_name=protocol_name,
        transcript=transcript,
        app_records=records,
        plaintexts=tuple(plaintexts),
        session_key=party_a.session_key,
    )
    material = CompromisedMaterial(
        private_keys={
            ctx_a.device_id: ctx_a.credential.private_key,
            ctx_b.device_id: ctx_b.credential.private_key,
        },
        certificates={
            ctx_a.device_id: ctx_a.credential.certificate,
            ctx_b.device_id: ctx_b.credential.certificate,
        },
        ca_public=ctx_a.ca_public,
        pre_shared_keys=dict(ctx_a.pre_shared_keys),
    )
    return scenario, material


def _wire(transcript: ProtocolTranscript, label: str, fieldname: str) -> bytes:
    """Fetch a field value from a recorded wire message."""
    for message in transcript.messages:
        if message.label == label:
            return message.field_value(fieldname)
    raise AnalysisError(f"no message {label} in transcript")


def recover_skd_session_key(
    scenario: RecordedScenario, material: CompromisedMaterial
) -> bytes:
    """Recompute an SKD protocol's session key from wire + long-term keys.

    This is the core of the forward-secrecy attack: everything needed is
    either on the wire (nonces, certificates) or in long-term storage
    (one private key).  Implemented per protocol exactly as the protocol
    itself derives the key.
    """
    name = scenario.protocol_name
    transcript = scenario.transcript
    if name in ("s-ecdsa", "s-ecdsa-ext"):
        nonce_a = _wire(transcript, "A1", "Nonce")
        nonce_b = _wire(transcript, "B1", "Nonce")
        cert_b = Certificate.decode(_wire(transcript, "B1", "Cert"))
        cert_a = Certificate.decode(_wire(transcript, "A2", "Cert"))
        d_a = material.private_keys[cert_a.subject_id]
        q_b = reconstruct_public_key(cert_b, material.ca_public)
        shared = mul_point(d_a, q_b)
        secret = int_to_bytes(shared.x, cert_b.curve.field_bytes)
        return derive_session_key(secret, nonce_a + nonce_b)
    if name == "scianc":
        nonce_a = _wire(transcript, "A1", "Nonce")
        nonce_b = _wire(transcript, "B1", "Nonce")
        cert_a = Certificate.decode(_wire(transcript, "A1", "Cert"))
        cert_b = Certificate.decode(_wire(transcript, "B1", "Cert"))
        d_a = material.private_keys[cert_a.subject_id]
        curve = cert_b.curve
        e = cert_digest_scalar(cert_b.encode(), curve)
        shared = mul_double(
            (d_a * e) % curve.n,
            cert_b.reconstruction_point,
            d_a,
            material.ca_public,
        )
        secret = int_to_bytes(shared.x, curve.field_bytes)
        return derive_session_key(secret, nonce_a + nonce_b)
    if name == "poramb":
        nonce_a = _wire(transcript, "A2", "Nonce")
        nonce_b = _wire(transcript, "B2", "Nonce")
        cert_a = Certificate.decode(_wire(transcript, "A2", "Cert"))
        cert_b = Certificate.decode(_wire(transcript, "B2", "Cert"))
        d_a = material.private_keys[cert_a.subject_id]
        curve = cert_b.curve
        e = cert_digest_scalar(cert_b.encode(), curve)
        shared = mul_double(
            (d_a * e) % curve.n,
            cert_b.reconstruction_point,
            d_a,
            material.ca_public,
        )
        secret = int_to_bytes(shared.x, curve.field_bytes)
        return derive_session_key(secret, nonce_a + nonce_b + b"poramb")
    if name.startswith("sts"):
        # Best the adversary can do: the *static* DH of the two certificate
        # keys.  The actual premaster used fresh ephemerals (Eq. 3), so
        # this necessarily yields a wrong key - asserted by the caller.
        cert_b = Certificate.decode(_wire(transcript, "B1", "Cert"))
        cert_a = Certificate.decode(_wire(transcript, "A2", "Cert"))
        xg_a = _wire(transcript, "A1", "XG")
        xg_b = _wire(transcript, "B1", "XG")
        d_a = material.private_keys[cert_a.subject_id]
        q_b = reconstruct_public_key(cert_b, material.ca_public)
        shared = mul_point(d_a, q_b)
        secret = int_to_bytes(shared.x, cert_b.curve.field_bytes)
        return derive_session_key(secret, xg_a + xg_b)
    raise AnalysisError(f"no recovery strategy for protocol {name!r}")


def try_decrypt_records(
    scenario: RecordedScenario, candidate_key: bytes
) -> list[bytes]:
    """Decrypt recorded app records with a candidate session key.

    Returns the plaintexts of the records whose MAC verified (an attacker
    knows a decryption worked because the tag checks out).
    """
    recovered: list[bytes] = []
    for record in scenario.app_records:
        try:
            plaintext, _, _ = open_record_with_key(
                enc_key(candidate_key), mac_key(candidate_key), record
            )
        except (AuthenticationError, ProtocolError):
            continue
        recovered.append(plaintext)
    return recovered


def record_then_compromise(
    testbed: TestBed, protocol_name: str
) -> AttackResult:
    """T1 forward-secrecy attack: record now, compromise keys later."""
    scenario, material = run_recorded_scenario(testbed, protocol_name)
    candidate = recover_skd_session_key(scenario, material)
    recovered = try_decrypt_records(scenario, candidate)
    success = recovered == list(scenario.plaintexts)
    if success:
        detail = (
            "session key recomputed from recorded wire data plus long-term"
            " keys; all recorded traffic decrypted"
        )
    else:
        detail = (
            "static-key recomputation yields a wrong key; recorded traffic"
            " stays confidential (forward secrecy holds)"
        )
    return AttackResult(
        attack="record-then-compromise",
        protocol_name=protocol_name,
        success=success,
        detail=detail,
        recovered_plaintexts=recovered,
    )


def key_reuse_across_sessions(
    testbed: TestBed, protocol_name: str, n_sessions: int = 4
) -> AttackResult:
    """T4: do repeated sessions share their underlying secret?

    Rather than comparing session keys directly (nonce-diversified KDs
    differ trivially), we compare what an adversary with long-term keys
    can *recover*: if the recovery above succeeds in every session, the
    sessions all hang off one reusable secret.
    """
    reused = 0
    distinct_keys: set[bytes] = set()
    for _ in range(n_sessions):
        scenario, material = run_recorded_scenario(testbed, protocol_name, 1)
        distinct_keys.add(scenario.session_key)
        candidate = recover_skd_session_key(scenario, material)
        if candidate == scenario.session_key:
            reused += 1
    success = reused == n_sessions
    detail = (
        f"{reused}/{n_sessions} session keys recomputable from the same"
        f" long-term material; {len(distinct_keys)} distinct session keys"
    )
    return AttackResult(
        attack="key-reuse",
        protocol_name=protocol_name,
        success=success,
        detail=detail,
    )


def node_capture(testbed: TestBed, protocol_name: str) -> AttackResult:
    """T3: capture a node after the fact; measure past-session exposure.

    ``success`` means *past* traffic was exposed.  Future impersonation
    with stolen credentials is possible against every protocol (the
    paper's Table III note) and reported in ``detail``.
    """
    past = record_then_compromise(testbed, protocol_name)
    detail = (
        ("past sessions EXPOSED; " if past.success else "past sessions protected; ")
        + "future impersonation with the captured credentials is possible"
        " for every protocol (only previous messages can be guaranteed)"
    )
    return AttackResult(
        attack="node-capture",
        protocol_name=protocol_name,
        success=past.success,
        detail=detail,
        recovered_plaintexts=past.recovered_plaintexts,
    )


def kci_impersonation(testbed: TestBed, protocol_name: str) -> AttackResult:
    """Key-compromise impersonation: with A's key, pose as B towards A.

    The adversary holds **only A's** long-term material.  If the protocol
    authenticates with material derivable from A's key (session-key MACs
    in SCIANC, the shared PSK in PORAMB), impersonation of B succeeds;
    ECDSA-based protocols require B's signing key, which the adversary
    does not have.
    """
    scenario, material = run_recorded_scenario(testbed, protocol_name, 1)
    cert_ids = sorted(material.certificates)
    id_a = next(i for i in cert_ids if i.startswith(b"alice"))
    if protocol_name in ("scianc", "poramb"):
        # The adversary recomputes the session key (and for PORAMB holds
        # the PSK from A's storage), so every authenticator B would send
        # is forgeable.  Demonstrated by the successful key recovery using
        # only A-side material.
        candidate = recover_skd_session_key(scenario, material)
        success = candidate == scenario.session_key
        detail = (
            "session key and authenticators computable from A's long-term"
            " material alone; adversary can impersonate B to A"
            if success
            else "unexpected: recovery with A's material failed"
        )
    else:
        # Signature-based protocols: impersonating B requires an ECDSA
        # signature under B's certificate key.  The adversary only has
        # A's key, so the best it can do is present B's certificate and
        # fail signature generation - verification at A must reject any
        # signature it can produce (e.g. one made with A's own key).
        from ..ecdsa import sign, verify

        curve = testbed.curve
        q_b = reconstruct_public_key(
            material.certificates[
                next(i for i in cert_ids if i.startswith(b"bob"))
            ],
            material.ca_public,
        )
        forged = sign(curve, material.private_keys[id_a], b"impersonation-attempt")
        success = verify(q_b, b"impersonation-attempt", forged)
        detail = (
            "forged signature accepted (!)"
            if success
            else "signatures under A's key never verify against B's"
            " reconstructed public key; KCI impersonation blocked"
        )
    return AttackResult(
        attack="kci-impersonation",
        protocol_name=protocol_name,
        success=success,
        detail=detail,
    )


def mitm_without_credentials(
    testbed: TestBed, protocol_name: str
) -> AttackResult:
    """T2: an outsider with a self-made certificate joins the handshake.

    The forged certificate is *not* CA-issued: the attacker fabricates a
    reconstruction point it controls, but the implicitly reconstructed
    public key ``H(Cert)*P + Q_CA`` is then a key whose private scalar the
    attacker cannot know.  Every protocol must abort.
    """
    from ..primitives import HmacDrbg
    from ..ecqv import EcqvCredential
    from ..ec import mul_base

    ctx_a, ctx_b = testbed.context_pair("alice", "bob", protocol_name)
    # Forge: attacker picks a random scalar and claims k*G as the
    # reconstruction point of a fabricated certificate for "bob".
    rng = HmacDrbg(b"attacker-seed")
    fake_scalar = rng.random_scalar(testbed.curve.n)
    legit_cert = ctx_b.credential.certificate
    forged_cert = Certificate(
        curve=legit_cert.curve,
        serial=legit_cert.serial + 1000,
        issuer_id=legit_cert.issuer_id,
        subject_id=legit_cert.subject_id,
        valid_from=legit_cert.valid_from,
        valid_to=legit_cert.valid_to,
        authority_key_id=legit_cert.authority_key_id,
        reconstruction_point=mul_base(fake_scalar, testbed.curve),
        key_usage=legit_cert.key_usage,
    )
    # The attacker *uses* fake_scalar as its private key - the best
    # available guess, but it does not match the reconstructed public key.
    ctx_b.credential = EcqvCredential(
        certificate=forged_cert,
        private_key=fake_scalar,
        public_key=reconstruct_public_key(forged_cert, testbed.ca.public_key),
    )
    party_a, party_b = get_protocol(protocol_name).factory(ctx_a, ctx_b)
    try:
        transcript = run_protocol(party_a, party_b)
    except (AuthenticationError, ProtocolError) as exc:
        return AttackResult(
            attack="mitm-forged-certificate",
            protocol_name=protocol_name,
            success=False,
            detail=f"handshake aborted: {exc}",
        )
    return AttackResult(
        attack="mitm-forged-certificate",
        protocol_name=protocol_name,
        success=True,
        detail=(
            "handshake completed with a forged certificate (!) -"
            f" {transcript.n_steps} messages exchanged"
        ),
    )
