"""Security matrix evaluation — the paper's Table III.

Five properties are scored for the four distinct protocols with the
paper's notation (✗ weak/none, ∆ partial, ✓ full).  Where a property is
attackable it is scored from *executed* attack simulations
(:mod:`repro.security.attacks`); structural aspects (what key material a
node must store, what the authentication is keyed by) come from protocol
metadata.  Every cell carries its rationale and, where applicable, the
attack evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import AnalysisError
from ..testbed import TestBed, make_testbed
from .attacks import (
    AttackResult,
    kci_impersonation,
    key_reuse_across_sessions,
    mitm_without_credentials,
    node_capture,
    record_then_compromise,
)


class Rating(Enum):
    """Table III cell values."""

    WEAK = "X"
    PARTIAL = "∆"  # ∆
    FULL = "✓"  # ✓


#: Property rows of Table III, in paper order.
PROPERTIES = (
    "data_exposure",
    "node_capturing",
    "key_data_reuse",
    "key_derivation_exploit",
    "auth_procedure",
)

PROPERTY_TITLES = {
    "data_exposure": "Data exposure",
    "node_capturing": "Node capturing",
    "key_data_reuse": "Key data reuse",
    "key_derivation_exploit": "Key der. exploit",
    "auth_procedure": "Auth. procedure",
}

#: The paper's published Table III, used as the reference to compare against.
PAPER_TABLE3: dict[str, dict[str, Rating]] = {
    "s-ecdsa": {
        "data_exposure": Rating.WEAK,
        "node_capturing": Rating.PARTIAL,
        "key_data_reuse": Rating.WEAK,
        "key_derivation_exploit": Rating.PARTIAL,
        "auth_procedure": Rating.FULL,
    },
    "sts": {
        "data_exposure": Rating.FULL,
        "node_capturing": Rating.PARTIAL,
        "key_data_reuse": Rating.FULL,
        "key_derivation_exploit": Rating.FULL,
        "auth_procedure": Rating.FULL,
    },
    "scianc": {
        "data_exposure": Rating.WEAK,
        "node_capturing": Rating.WEAK,
        "key_data_reuse": Rating.PARTIAL,
        "key_derivation_exploit": Rating.PARTIAL,
        "auth_procedure": Rating.PARTIAL,
    },
    "poramb": {
        "data_exposure": Rating.WEAK,
        "node_capturing": Rating.WEAK,
        "key_data_reuse": Rating.WEAK,
        "key_derivation_exploit": Rating.PARTIAL,
        "auth_procedure": Rating.PARTIAL,
    },
}

#: Structural facts per protocol the non-attackable cells draw on.
_STRUCTURE = {
    "s-ecdsa": {
        "auth": "ecdsa",
        "kdf_diversifier": "nonces not bound into the signature-protected"
        " derivation; secret fully certificate-tied",
        "stores_pairwise_keys": False,
        "auth_tied_to_session_key": False,
    },
    "sts": {
        "auth": "ecdsa",
        "kdf_diversifier": "fresh ephemerals every session",
        "stores_pairwise_keys": False,
        "auth_tied_to_session_key": False,
    },
    "scianc": {
        "auth": "symmetric",
        "kdf_diversifier": "public nonces diversify the KDF output only",
        "stores_pairwise_keys": False,
        "auth_tied_to_session_key": True,
    },
    "poramb": {
        "auth": "symmetric",
        "kdf_diversifier": "public nonces diversify the KDF output only",
        "stores_pairwise_keys": True,
        "auth_tied_to_session_key": False,
    },
}


@dataclass
class CellAssessment:
    """One Table III cell with its justification."""

    protocol_name: str
    property_name: str
    rating: Rating
    rationale: str
    evidence: list[AttackResult] = field(default_factory=list)


@dataclass
class SecurityMatrix:
    """The full evaluated matrix plus comparison to the paper."""

    cells: dict[tuple[str, str], CellAssessment]

    def rating(self, protocol: str, prop: str) -> Rating:
        """Rating of one cell."""
        return self.cells[(protocol, prop)].rating

    def matches_paper(self) -> bool:
        """True if every cell equals the paper's Table III."""
        return all(
            self.rating(p, prop) == PAPER_TABLE3[p][prop]
            for p in PAPER_TABLE3
            for prop in PROPERTIES
        )

    def mismatches(self) -> list[tuple[str, str, Rating, Rating]]:
        """Cells that differ from the paper: (protocol, prop, ours, paper)."""
        diffs = []
        for p in PAPER_TABLE3:
            for prop in PROPERTIES:
                ours = self.rating(p, prop)
                theirs = PAPER_TABLE3[p][prop]
                if ours != theirs:
                    diffs.append((p, prop, ours, theirs))
        return diffs

    def render(self) -> str:
        """ASCII rendering in the paper's layout."""
        protocols = list(PAPER_TABLE3)
        header = f"{'':24s}" + "".join(f"{p.upper():>12s}" for p in protocols)
        lines = [header]
        for prop in PROPERTIES:
            row = f"{PROPERTY_TITLES[prop]:24s}"
            for p in protocols:
                row += f"{self.rating(p, prop).value:>12s}"
            lines.append(row)
        return "\n".join(lines)


def evaluate_protocol(
    testbed: TestBed, protocol_name: str
) -> dict[str, CellAssessment]:
    """Score all five properties for one protocol, attacks included."""
    if protocol_name not in _STRUCTURE:
        raise AnalysisError(f"no security profile for {protocol_name!r}")
    structure = _STRUCTURE[protocol_name]
    cells: dict[str, CellAssessment] = {}

    # -- Data exposure (T1): direct forward-secrecy attack. ----------------
    fs_attack = record_then_compromise(testbed, protocol_name)
    cells["data_exposure"] = CellAssessment(
        protocol_name=protocol_name,
        property_name="data_exposure",
        rating=Rating.WEAK if fs_attack.success else Rating.FULL,
        rationale=fs_attack.detail,
        evidence=[fs_attack],
    )

    # -- Node capturing (T3): past exposure + stored-material surface. ------
    nc_attack = node_capture(testbed, protocol_name)
    if nc_attack.success and (
        structure["stores_pairwise_keys"]
        or structure["auth_tied_to_session_key"]
    ):
        nc_rating = Rating.WEAK
        nc_rationale = (
            nc_attack.detail
            + "; captured storage additionally breaks the authentication"
            " material (pairwise keys / session-key-bound MACs)"
        )
    elif nc_attack.success:
        nc_rating = Rating.PARTIAL
        nc_rationale = (
            nc_attack.detail
            + "; authentication keys remain per-device ECDSA keys"
        )
    else:
        nc_rating = Rating.PARTIAL  # STS: past protected, future is not
        nc_rationale = nc_attack.detail
    cells["node_capturing"] = CellAssessment(
        protocol_name=protocol_name,
        property_name="node_capturing",
        rating=nc_rating,
        rationale=nc_rationale,
        evidence=[nc_attack],
    )

    # -- Key data reuse (T4): repeated-session recovery attack. -------------
    reuse_attack = key_reuse_across_sessions(testbed, protocol_name)
    if not reuse_attack.success:
        reuse_rating = Rating.FULL
        reuse_rationale = (
            "every session uses an independent ephemeral secret; "
            + reuse_attack.detail
        )
    elif structure["auth_tied_to_session_key"]:
        # SCIANC at least decouples repeated *session keys* via nonces in
        # the KDF input, which the paper credits as partial.
        reuse_rating = Rating.PARTIAL
        reuse_rationale = (
            "one static secret spans all sessions, diversified only by "
            "public nonces; " + reuse_attack.detail
        )
    else:
        reuse_rating = Rating.WEAK
        reuse_rationale = (
            "one static certificate-bound secret spans all sessions; "
            + reuse_attack.detail
        )
    cells["key_data_reuse"] = CellAssessment(
        protocol_name=protocol_name,
        property_name="key_data_reuse",
        rating=reuse_rating,
        rationale=reuse_rationale,
        evidence=[reuse_attack],
    )

    # -- Key derivation exploitation (T5): KCI + derivation inputs. ---------
    kci_attack = kci_impersonation(testbed, protocol_name)
    if not fs_attack.success and not kci_attack.success:
        kde_rating = Rating.FULL
        kde_rationale = (
            "derivation inputs are fresh and non-derivable from long-term"
            " material; KCI impersonation blocked by ECDSA authentication"
        )
    else:
        kde_rating = Rating.PARTIAL
        kde_rationale = (
            "derivation draws on long-term material recoverable by a key"
            " compromise; " + kci_attack.detail
        )
    cells["key_derivation_exploit"] = CellAssessment(
        protocol_name=protocol_name,
        property_name="key_derivation_exploit",
        rating=kde_rating,
        rationale=kde_rationale,
        evidence=[kci_attack, fs_attack],
    )

    # -- Authentication procedure (T2): outsider MitM + mechanism class. ----
    mitm_attack = mitm_without_credentials(testbed, protocol_name)
    if mitm_attack.success:
        auth_rating = Rating.WEAK
        auth_rationale = "outsider MitM succeeded: " + mitm_attack.detail
    elif structure["auth"] == "ecdsa":
        auth_rating = Rating.FULL
        auth_rationale = (
            "mutual ECDSA authentication with implicitly reconstructed"
            " keys; forged-certificate handshake rejected"
        )
    else:
        auth_rating = Rating.PARTIAL
        auth_rationale = (
            "symmetric-only authentication (session-key MACs or stored"
            " pairwise keys); forged-certificate handshake rejected, but"
            " the mechanism degrades under key compromise"
        )
    cells["auth_procedure"] = CellAssessment(
        protocol_name=protocol_name,
        property_name="auth_procedure",
        rating=auth_rating,
        rationale=auth_rationale,
        evidence=[mitm_attack],
    )
    return cells


def evaluate_security_matrix(testbed: TestBed | None = None) -> SecurityMatrix:
    """Evaluate all four protocols (the full Table III reproduction)."""
    if testbed is None:
        testbed = make_testbed(seed=b"repro-security")
    cells: dict[tuple[str, str], CellAssessment] = {}
    for protocol_name in PAPER_TABLE3:
        for prop, cell in evaluate_protocol(testbed, protocol_name).items():
            cells[(protocol_name, prop)] = cell
    return SecurityMatrix(cells=cells)
