"""Threat-model graph — the paper's Fig. 8 block diagram.

Builds the asset → threat → countermeasure graph for the STS-ECQV design
as a :mod:`networkx` digraph and renders it as text.  The node-capture
threat (T3) points at the special partial-protection node ``R`` — forward
secrecy shields previous messages only.
"""

from __future__ import annotations

import networkx as nx

from .threats import (
    COUNTERMEASURES,
    MITIGATIONS,
    THREATS,
    THREATS_ON_ASSETS,
)

#: Node kinds used in the graph's ``kind`` attribute.
KIND_ASSET = "asset"
KIND_THREAT = "threat"
KIND_COUNTERMEASURE = "countermeasure"
KIND_PARTIAL = "partial"


def build_threat_model() -> nx.DiGraph:
    """Construct the Fig. 8 graph.

    Edges run asset → threat ("is threatened by") and threat →
    countermeasure ("is mitigated by").
    """
    graph = nx.DiGraph(name="sts-ecqv-threat-model")
    for asset_name in THREATS_ON_ASSETS:
        graph.add_node(asset_name, kind=KIND_ASSET)
    for threat in THREATS.values():
        graph.add_node(
            threat.key, kind=KIND_THREAT, title=threat.title,
            description=threat.description,
        )
    for cm in COUNTERMEASURES.values():
        graph.add_node(
            cm.key, kind=KIND_COUNTERMEASURE, title=cm.title,
            description=cm.description,
        )
    graph.add_node(
        "R",
        kind=KIND_PARTIAL,
        title="Partial Protection",
        description="Node capture: only previous messages stay protected.",
    )
    for asset_name, threat_keys in THREATS_ON_ASSETS.items():
        for tk in threat_keys:
            graph.add_edge(asset_name, tk, relation="threatened-by")
    for threat_key, cm_keys in MITIGATIONS.items():
        for ck in cm_keys:
            graph.add_edge(threat_key, ck, relation="mitigated-by")
    return graph


def coverage_summary(graph: nx.DiGraph | None = None) -> dict[str, list[str]]:
    """Threat key → list of mitigating countermeasure keys."""
    if graph is None:
        graph = build_threat_model()
    return {
        node: sorted(graph.successors(node))
        for node, data in graph.nodes(data=True)
        if data.get("kind") == KIND_THREAT
    }


def uncovered_threats(graph: nx.DiGraph | None = None) -> list[str]:
    """Threats with no countermeasure at all (must be empty for STS-ECQV)."""
    return [t for t, cms in coverage_summary(graph).items() if not cms]


def render_threat_model(graph: nx.DiGraph | None = None) -> str:
    """ASCII rendering of the Fig. 8 block structure."""
    if graph is None:
        graph = build_threat_model()
    lines = ["STS-ECQV key derivation threat model (paper Fig. 8)", ""]
    for asset_name, threat_keys in THREATS_ON_ASSETS.items():
        lines.append(f"[{asset_name}]")
        for tk in threat_keys:
            threat = THREATS[tk]
            cms = sorted(graph.successors(tk))
            labels = []
            for ck in cms:
                data = graph.nodes[ck]
                labels.append(f"{ck}:{data.get('title', ck)}")
            lines.append(
                f"  <- [{threat.key}] {threat.title:28s} "
                f"mitigated by {', '.join(labels)}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
