"""Wire-format helpers shared by the key-derivation protocols.

The byte sizes here are the ones the paper's Table II assumes:

* ``ID`` — 16 bytes,
* ``Nonce`` — 32 bytes,
* ``XG`` / ``Sign`` / ``Resp`` — 64 bytes on secp256r1 (raw ``X||Y`` point
  and raw ``r||s`` signature, no ASN.1 framing),
* ``Cert`` — 101 bytes (minimal ECQV encoding),
* ``ACK`` — 1 byte.
"""

from __future__ import annotations

from ..ec import Curve, Point
from ..errors import ProtocolError
from ..primitives import ctr_crypt, hkdf, x963_kdf
from ..utils import bytes_to_int, int_to_bytes

ID_SIZE = 16
NONCE_SIZE = 32
ACK_BYTE = b"\x06"  # classic ASCII ACK

#: Session-key material layout: 16-byte AES-128 key || 32-byte HMAC key.
ENC_KEY_SIZE = 16
MAC_KEY_SIZE = 32
SESSION_KEY_SIZE = ENC_KEY_SIZE + MAC_KEY_SIZE


def encode_point_raw(point: Point) -> bytes:
    """Raw ``X || Y`` encoding (64 bytes on secp256r1, Table II's XG(64))."""
    if point.is_infinity:
        raise ProtocolError("cannot wire-encode the point at infinity")
    mlen = point.curve.field_bytes
    return int_to_bytes(point.x, mlen) + int_to_bytes(point.y, mlen)


def decode_point_raw(curve: Curve, data: bytes) -> Point:
    """Decode a raw ``X || Y`` point, validating it lies on the curve."""
    mlen = curve.field_bytes
    if len(data) != 2 * mlen:
        raise ProtocolError(
            f"raw point must be {2 * mlen} bytes, got {len(data)}"
        )
    x = bytes_to_int(data[:mlen])
    y = bytes_to_int(data[mlen:])
    if not curve.contains(x, y):
        raise ProtocolError("raw point is not on the curve")
    return Point(curve, x, y)


def point_raw_size(curve: Curve) -> int:
    """Size of the raw point encoding (64 on secp256r1)."""
    return 2 * curve.field_bytes


def derive_session_key(premaster: bytes, salt: bytes) -> bytes:
    """Paper Eq. 4: ``K_S = KDF(K_PM, salt)``.

    Uses the ANSI X9.63 KDF that SEC 4 prescribes for EC shared secrets.
    Returns :data:`SESSION_KEY_SIZE` bytes (AES-128 key || HMAC key).
    """
    return x963_kdf(premaster, shared_info=salt, length=SESSION_KEY_SIZE)


def enc_key(session_key: bytes) -> bytes:
    """AES-128 half of the session key material."""
    _check_session_key(session_key)
    return session_key[:ENC_KEY_SIZE]


def mac_key(session_key: bytes) -> bytes:
    """HMAC half of the session key material."""
    _check_session_key(session_key)
    return session_key[ENC_KEY_SIZE:]


def _check_session_key(session_key: bytes) -> None:
    if len(session_key) != SESSION_KEY_SIZE:
        raise ProtocolError(
            f"session key must be {SESSION_KEY_SIZE} bytes,"
            f" got {len(session_key)}"
        )


def response_iv(session_key: bytes, direction: str) -> bytes:
    """Deterministic per-direction CBC IV for the STS ``Resp`` field.

    Both stations must derive the same IV without transmitting it (the
    Table II ``Resp`` field is exactly the 64 ciphertext bytes).  The IV is
    taken from HKDF of the fresh session key with a direction label, so it
    is unique per session *and* per direction.
    """
    if direction not in ("A", "B"):
        raise ProtocolError(f"direction must be 'A' or 'B', got {direction!r}")
    return hkdf(
        session_key, info=b"sts-resp-iv-" + direction.encode(), length=16
    )


def encrypt_response(session_key: bytes, direction: str, dsign: bytes) -> bytes:
    """``Resp = encrypt(K_S, dsign)`` (paper Algorithm 1, line 6).

    AES-CTR under the per-direction IV: length-preserving, so the
    ciphertext is exactly the raw signature size — the ``Resp(64)`` field
    of Table II on secp256r1, and the right size on every other curve
    (e.g. 56 bytes on secp224r1, where unpadded CBC could not run).  The
    key is fresh per session and each direction's IV is used exactly
    once, so the CTR keystream never repeats.
    """
    if not dsign:
        raise ProtocolError("dsign must be non-empty")
    return ctr_crypt(
        enc_key(session_key), response_iv(session_key, direction), dsign
    )


def decrypt_response(session_key: bytes, direction: str, resp: bytes) -> bytes:
    """Inverse of :func:`encrypt_response` (paper Algorithm 2, line 1)."""
    if not resp:
        raise ProtocolError("response must be non-empty")
    return ctr_crypt(
        enc_key(session_key), response_iv(session_key, direction), resp
    )
