"""PORAMB: the two-phase WSN baseline (Porambage et al. [3], [9]).

Message flow (paper Table II)::

    A -> B   A1: Hello_A(32), ID_A(16)
    B -> A   B1: Hello_B(32), ID_B(16)
    A -> B   A2: Cert_A(101), Nonce_A(32), MAC_A(32)
    B -> A   B2: Cert_B(101), Nonce_B(32), MAC_B(32)
    A -> B   A3: Finish_A(197)
    B -> A   B3: Finish_B(197)

Phase 1 (hello + certificate exchange) authenticates with MACs keyed by
**pre-embedded pairwise keys** — the deployment burden the paper calls out
("the requirement to store individual keys per the number of devices").
Phase 2 derives the static pairwise secret from the implicit certificates
and confirms it with the 197-byte ``Finish`` messages (certificate echo +
confirmation nonce + two tags).

Cost model note: each phase performs one fused reconstruct-and-derive
double multiplication (the phase-1 result is not cached — constrained WSN
nodes in the original design recompute), giving 2 fused EC operations per
device.  That reproduces Table I's consistent PORAMB ≈ 2 × SCIANC ratio.
"""

from __future__ import annotations

from ..ec import mul_double
from ..ecqv import Certificate, cert_digest_scalar, validate_certificate
from ..errors import AuthenticationError, ProtocolError
from ..primitives import hkdf, hmac
from ..utils import constant_time_equal, int_to_bytes
from .base import (
    Message,
    OP2,
    OP_SYM,
    Party,
    ROLE_A,
    ROLE_B,
    SessionContext,
)
from .wire import NONCE_SIZE, derive_session_key, mac_key

HELLO_SIZE = 32
FINISH_SIZE = 197  # Cert(101) + ConfNonce(32) + AuthTag(32) + KeyConfTag(32)


class PorambParty(Party):
    """One station of the Porambage two-phase protocol.

    Requires ``ctx.pre_shared_keys[peer_id]`` to hold the pairwise
    authentication key for every peer this device may talk to.
    """

    protocol_name = "poramb"

    def __init__(self, ctx: SessionContext, role: str) -> None:
        super().__init__(ctx, role)
        self._hello_own: bytes | None = None
        self._hello_peer: bytes | None = None
        self._nonce_own: bytes | None = None
        self._nonce_peer: bytes | None = None
        self._peer_id: bytes | None = None
        self._peer_cert: Certificate | None = None
        self._auth_secret: bytes | None = None

    # -- building blocks ---------------------------------------------------------

    def _psk(self) -> bytes:
        """Pairwise pre-shared authentication key for the current peer."""
        if self._peer_id is None:
            raise ProtocolError("PORAMB: peer identity not yet known")
        try:
            return self.ctx.pre_shared_keys[bytes(self._peer_id)]
        except KeyError:
            raise AuthenticationError(
                f"PORAMB: no pre-shared key for peer {self._peer_id.hex()}"
            ) from None

    def _hellos_ordered(self) -> bytes:
        if self.role == ROLE_A:
            return self._hello_own + self._hello_peer
        return self._hello_peer + self._hello_own

    def _nonces_ordered(self) -> bytes:
        if self.role == ROLE_A:
            return self._nonce_own + self._nonce_peer
        return self._nonce_peer + self._nonce_own

    def _fused_shared_x(self, cert: Certificate) -> bytes:
        """One fused reconstruct-and-derive double multiplication.

        ``d·Q_peer = d·(e·P + Q_issuer) = (d·e)·P + d·Q_issuer`` holds for
        whichever CA issued the peer certificate, so chained deployments
        just substitute the resolved issuer key.
        """
        curve = cert.curve
        d = self.ctx.credential.private_key
        e = cert_digest_scalar(cert.encode(), curve)
        shared = mul_double(
            (d * e) % curve.n,
            cert.reconstruction_point,
            d,
            self.ctx.issuer_public_for(cert),
        )
        if shared.is_infinity:
            raise ProtocolError("PORAMB: degenerate shared point")
        return int_to_bytes(shared.x, curve.field_bytes)

    def _phase1_mac(self, cert_bytes: bytes, nonce: bytes) -> bytes:
        """Phase-1 MAC keyed by the pre-shared pairwise key."""
        return hmac(self._psk(), cert_bytes + nonce + self._hellos_ordered())

    def _derive_keys(self) -> None:
        """Phase 2: auth key + session key, one fused EC op each.

        The phase-1 shared point is recomputed rather than cached,
        matching the constrained-node behaviour the cost model assumes.
        """
        cert = self._peer_cert
        with self.operation("auth_key_derivation", OP2):
            auth_x = self._fused_shared_x(cert)
            self._auth_secret = hkdf(
                auth_x, info=b"poramb-auth" + self._hellos_ordered(), length=32
            )
        with self.operation("session_key_derivation", OP2):
            sess_x = self._fused_shared_x(cert)
            self.session_key = derive_session_key(
                sess_x, self._nonces_ordered() + b"poramb"
            )

    def _finish_message(self, label: str) -> Message:
        """Build the 197-byte Finish: cert echo + nonce + two tags."""
        with self.operation("finish_generation", OP_SYM):
            conf_nonce = self.ctx.rng.generate(NONCE_SIZE)
            transcript = self._hellos_ordered() + self._nonces_ordered()
            auth_tag = hmac(
                self._auth_secret,
                b"poramb-fin-auth" + self.role.encode() + transcript,
            )
            keyconf_tag = hmac(
                mac_key(self.session_key),
                b"poramb-fin-key" + self.role.encode() + transcript + conf_nonce,
            )
        cert_bytes = self.ctx.credential.certificate.encode()
        return Message(
            sender=self.role,
            label=label,
            fields=(
                ("Cert", cert_bytes),
                ("ConfNonce", conf_nonce),
                ("AuthTag", auth_tag),
                ("KeyConfTag", keyconf_tag),
            ),
        )

    def _check_finish(self, msg: Message) -> None:
        """Validate the peer's Finish message (symmetric-only)."""
        with self.operation("finish_verification", OP_SYM):
            peer_role = ROLE_B if self.role == ROLE_A else ROLE_A
            transcript = self._hellos_ordered() + self._nonces_ordered()
            expected_auth = hmac(
                self._auth_secret,
                b"poramb-fin-auth" + peer_role.encode() + transcript,
            )
            expected_keyconf = hmac(
                mac_key(self.session_key),
                b"poramb-fin-key"
                + peer_role.encode()
                + transcript
                + msg.field_value("ConfNonce"),
            )
            if not constant_time_equal(
                msg.field_value("AuthTag"), expected_auth
            ) or not constant_time_equal(
                msg.field_value("KeyConfTag"), expected_keyconf
            ):
                raise AuthenticationError(
                    f"PORAMB: finish verification failed at {self.role}"
                )
            if msg.field_value("Cert") != self._peer_cert.encode():
                raise AuthenticationError(
                    "PORAMB: finish certificate echo mismatch"
                )
            self.peer_authenticated = True

    def _accept_phase1(self, msg: Message) -> None:
        """Validate the peer's A2/B2 phase-1 message."""
        self._nonce_peer = msg.field_value("Nonce")
        with self.operation("phase1_mac_verification", OP_SYM):
            cert_bytes = msg.field_value("Cert")
            expected = hmac(
                self._psk(),
                cert_bytes + self._nonce_peer + self._hellos_ordered(),
            )
            if not constant_time_equal(msg.field_value("MAC"), expected):
                raise AuthenticationError(
                    f"PORAMB: phase-1 MAC mismatch at {self.role}"
                )
            cert = Certificate.decode(cert_bytes)
            validate_certificate(
                cert,
                self.ctx.issuer_public_for(cert),
                self.ctx.now,
                self.ctx.policy,
            )
            if cert.subject_id != self._peer_id:
                raise AuthenticationError(
                    "PORAMB: certificate subject differs from hello identity"
                )
            self._peer_cert = cert

    def _phase1_message(self, label: str) -> Message:
        with self.operation("phase1_mac_generation", OP_SYM):
            self._nonce_own = self.ctx.rng.generate(NONCE_SIZE)
            cert_bytes = self.ctx.credential.certificate.encode()
            tag = self._phase1_mac(cert_bytes, self._nonce_own)
        return Message(
            sender=self.role,
            label=label,
            fields=(
                ("Cert", cert_bytes),
                ("Nonce", self._nonce_own),
                ("MAC", tag),
            ),
        )

    def _hello(self, label: str) -> Message:
        with self.operation("hello_generation", OP_SYM):
            self._hello_own = self.ctx.rng.generate(HELLO_SIZE)
        return Message(
            sender=self.role,
            label=label,
            fields=(
                ("Hello", self._hello_own),
                ("ID", self.ctx.device_id),
            ),
        )

    # -- state machine -------------------------------------------------------------

    def _advance(self, incoming: Message | None) -> Message | None:
        if self.role == ROLE_A:
            return self._advance_initiator(incoming)
        return self._advance_responder(incoming)

    def _advance_initiator(self, incoming: Message | None) -> Message | None:
        if incoming is None:
            return self._hello("A1")
        if incoming.label == "B1":
            self._hello_peer = incoming.field_value("Hello")
            self._peer_id = incoming.field_value("ID")
            return self._phase1_message("A2")
        if incoming.label == "B2":
            self._accept_phase1(incoming)
            self._derive_keys()
            return self._finish_message("A3")
        if incoming.label == "B3":
            self._check_finish(incoming)
            self._finish(self.session_key, self._peer_cert.subject_id)
            return None
        raise ProtocolError(f"PORAMB initiator: unexpected {incoming.label}")

    def _advance_responder(self, incoming: Message | None) -> Message | None:
        if incoming is None:
            raise ProtocolError("PORAMB responder cannot initiate")
        if incoming.label == "A1":
            self._hello_peer = incoming.field_value("Hello")
            self._peer_id = incoming.field_value("ID")
            return self._hello("B1")
        if incoming.label == "A2":
            self._accept_phase1(incoming)
            return self._phase1_message("B2")
        if incoming.label == "A3":
            self._derive_keys()
            self._check_finish(incoming)
            self._finish(self.session_key, self._peer_cert.subject_id)
            return self._finish_message("B3")
        raise ProtocolError(f"PORAMB responder: unexpected {incoming.label}")


def make_poramb_pair(
    ctx_a: SessionContext, ctx_b: SessionContext
) -> tuple[PorambParty, PorambParty]:
    """Create an initiator/responder PORAMB pair."""
    return PorambParty(ctx_a, ROLE_A), PorambParty(ctx_b, ROLE_B)


def install_pairwise_key(
    ctx_a: SessionContext, ctx_b: SessionContext, key: bytes
) -> None:
    """Pre-embed a pairwise authentication key on both devices.

    Models the PORAMB deployment requirement of one stored key per peer.
    """
    ctx_a.pre_shared_keys[bytes(ctx_b.device_id)] = key
    ctx_b.pre_shared_keys[bytes(ctx_a.device_id)] = key
