"""Protocol registry: the seven variants of the paper's evaluation.

Names match the rows of Tables I–III:

* ``s-ecdsa`` / ``s-ecdsa-ext`` — static ECDSA KD (Basic et al.), base and
  authenticated-acknowledgement extension,
* ``sts`` / ``sts-opt1`` / ``sts-opt2`` — this paper's dynamic KD, with the
  §IV-C pipelining schedules (identical wire protocol),
* ``scianc`` — Sciancalepore et al.,
* ``poramb`` — Porambage et al.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ProtocolError
from .base import Party, ProtocolTranscript, SessionContext, run_protocol
from .poramb import make_poramb_pair
from .s_ecdsa import make_s_ecdsa_pair
from .scianc import make_scianc_pair
from .sts import SCHEDULE_OPT1, SCHEDULE_OPT2, SCHEDULE_SEQUENTIAL, make_sts_pair

PairFactory = Callable[[SessionContext, SessionContext], tuple[Party, Party]]


@dataclass(frozen=True)
class ProtocolInfo:
    """Registry entry for one protocol variant.

    Attributes:
        name: registry key (Table I row).
        display_name: label used in reports.
        factory: builds an (initiator, responder) party pair.
        dynamic: True if the protocol performs dynamic key derivation
            (fresh ephemeral secret per communication session).
        schedule: STS execution schedule tag (sequential for non-STS).
        needs_pairwise_psk: True if pre-shared pairwise keys are required.
    """

    name: str
    display_name: str
    factory: PairFactory
    dynamic: bool
    schedule: str = SCHEDULE_SEQUENTIAL
    needs_pairwise_psk: bool = False


PROTOCOLS: dict[str, ProtocolInfo] = {
    "s-ecdsa": ProtocolInfo(
        name="s-ecdsa",
        display_name="S-ECDSA",
        factory=lambda a, b: make_s_ecdsa_pair(a, b, extended=False),
        dynamic=False,
    ),
    "s-ecdsa-ext": ProtocolInfo(
        name="s-ecdsa-ext",
        display_name="S-ECDSA (ext.)",
        factory=lambda a, b: make_s_ecdsa_pair(a, b, extended=True),
        dynamic=False,
    ),
    "sts": ProtocolInfo(
        name="sts",
        display_name="STS",
        factory=lambda a, b: make_sts_pair(a, b, SCHEDULE_SEQUENTIAL),
        dynamic=True,
    ),
    "sts-opt1": ProtocolInfo(
        name="sts-opt1",
        display_name="STS (opt. I)",
        factory=lambda a, b: make_sts_pair(a, b, SCHEDULE_OPT1),
        dynamic=True,
        schedule=SCHEDULE_OPT1,
    ),
    "sts-opt2": ProtocolInfo(
        name="sts-opt2",
        display_name="STS (opt. II)",
        factory=lambda a, b: make_sts_pair(a, b, SCHEDULE_OPT2),
        dynamic=True,
        schedule=SCHEDULE_OPT2,
    ),
    "scianc": ProtocolInfo(
        name="scianc",
        display_name="SCIANC",
        factory=make_scianc_pair,
        dynamic=False,
    ),
    "poramb": ProtocolInfo(
        name="poramb",
        display_name="PORAMB",
        factory=make_poramb_pair,
        dynamic=False,
        needs_pairwise_psk=True,
    ),
}

#: The order Tables I/II list the protocols in.
TABLE_ORDER = (
    "s-ecdsa",
    "s-ecdsa-ext",
    "sts",
    "sts-opt1",
    "sts-opt2",
    "scianc",
    "poramb",
)

#: The four distinct protocols of the security analysis (Table III).
SECURITY_ORDER = ("s-ecdsa", "sts", "scianc", "poramb")


def get_protocol(name: str) -> ProtocolInfo:
    """Look up a protocol variant by registry name."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ProtocolError(
            f"unknown protocol {name!r}; known: {sorted(PROTOCOLS)}"
        ) from None


def run_named_protocol(
    name: str, ctx_a: SessionContext, ctx_b: SessionContext
) -> ProtocolTranscript:
    """Instantiate and run a registered protocol to completion."""
    info = get_protocol(name)
    party_a, party_b = info.factory(ctx_a, ctx_b)
    return run_protocol(party_a, party_b)
