"""Precomputed ephemeral pools: amortizing Op1 across many sessions.

Op1 of every dynamic key-derivation run is a base-point multiplication
``XG = X*G`` (paper Eq. 2).  A device expecting many sessions — or a
gateway answering a whole fleet — can precompute a burst of ephemerals
with :func:`~repro.ec.mul_base_batch`, paying one shared Jacobian
normalization for the entire pool instead of one inversion per session.
The wire protocol is unchanged: a pooled Op1 sends exactly the bytes a
freshly computed one would.

A pool is attached to a :class:`~repro.protocols.base.SessionContext` via
its ``ephemeral_pool`` field; :class:`~repro.protocols.sts.StsParty`
drains it transparently and falls back to on-demand computation when the
pool is empty (so an under-provisioned pool degrades, never breaks).
"""

from __future__ import annotations

from collections import deque

from ..ec import Curve, mul_base_batch
from ..errors import ProtocolError
from ..primitives import HmacDrbg
from .wire import encode_point_raw


class EphemeralPool:
    """A FIFO of precomputed ``(X, XG)`` ephemeral pairs for one curve.

    Args:
        curve: domain parameters the ephemerals live on.
        rng: DRBG the secret scalars are drawn from (draws ``size``
            scalars immediately, in order, so pooled and on-demand
            generation consume the stream identically).
        size: number of ephemerals to precompute up front.
    """

    def __init__(self, curve: Curve, rng: HmacDrbg, size: int) -> None:
        if size <= 0:
            raise ProtocolError(f"pool size must be positive, got {size}")
        self.curve = curve
        self.built = 0
        self._entries: deque[tuple[int, bytes]] = deque()
        self.refill(rng, size)

    def __len__(self) -> int:
        return len(self._entries)

    def refill(self, rng: HmacDrbg, size: int) -> None:
        """Precompute ``size`` further ephemerals in one batch."""
        if size <= 0:
            raise ProtocolError(f"refill size must be positive, got {size}")
        scalars = [rng.random_scalar(self.curve.n) for _ in range(size)]
        points = mul_base_batch(scalars, self.curve)
        self._entries.extend(
            (scalar, encode_point_raw(point))
            for scalar, point in zip(scalars, points)
        )
        self.built += size

    def take(self, curve: Curve) -> tuple[int, bytes]:
        """Pop the oldest precomputed pair, validating the curve binding.

        Raises:
            ProtocolError: if the pool is empty or was built for a
                different curve than the caller's.
        """
        if curve != self.curve:
            # Full-parameter comparison: a curve merely sharing a name
            # must not receive ephemerals from a different group (the
            # same aliasing hazard the base-table cache guards against).
            raise ProtocolError(
                f"ephemeral pool built for {self.curve.name},"
                f" requested incompatible {curve.name}"
            )
        if not self._entries:
            raise ProtocolError("ephemeral pool exhausted")
        return self._entries.popleft()
