"""Session lifecycle management: key-lifetime policy as an API.

The paper's motivation is operational: "limitations in the system's
architecture, constrained nature of the devices, or neglect from the
developers can lead to longer than the intended use of the same session
key".  :class:`SessionManager` turns the intended use into enforced
policy — a downstream application gets fresh STS sessions automatically
and can never keep using a stale key:

* a session expires after ``max_age_seconds`` *or* ``max_records``
  (whichever first, both paper-motivated bounds);
* sending on an expired session raises :class:`SessionExpired`, and
  :func:`connect_managers` re-establishes with a fresh protocol run;
* expired key material is dropped from the manager immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ProtocolError, ReproError
from .base import SessionContext
from .registry import get_protocol, run_named_protocol
from .session import SecureSession


class SessionExpired(ReproError):
    """The session reached its age or record budget; re-establish."""


@dataclass
class ManagedSession:
    """One live session with its usage accounting."""

    peer_id: bytes
    channel: SecureSession
    established_at: float
    records_used: int = 0
    generation: int = 1


@dataclass
class SessionPolicy:
    """Key-lifetime policy.

    Attributes:
        max_age_seconds: wall-clock budget of one session key.
        max_records: record budget of one session key.
    """

    max_age_seconds: float = 3600.0
    max_records: int = 10_000

    def __post_init__(self) -> None:
        if self.max_age_seconds <= 0 or self.max_records <= 0:
            raise ProtocolError("session policy bounds must be positive")


class SessionManager:
    """Per-device manager of secure sessions keyed by peer identity.

    Args:
        context_factory: zero-argument callable producing a fresh
            :class:`SessionContext` for each establishment (fresh DRBG
            stream per session; :meth:`repro.testbed.TestBed.context`
            bound with ``functools.partial`` is the usual source).
        role: this endpoint's role in every session it manages.
        protocol: registry name of the KD protocol to run.
        policy: key-lifetime policy.
        clock: injectable time source (seconds).
    """

    def __init__(
        self,
        context_factory: Callable[[], SessionContext],
        role: str,
        protocol: str = "sts",
        policy: SessionPolicy | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        get_protocol(protocol)  # fail fast on unknown names
        self.context_factory = context_factory
        self.role = role
        self.protocol = protocol
        self.policy = policy if policy is not None else SessionPolicy()
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.sessions: dict[bytes, ManagedSession] = {}
        self.established_count = 0
        self._generations: dict[bytes, int] = {}

    # -- lifecycle ------------------------------------------------------------

    def install(
        self, peer_id: bytes, session_key: bytes, role: str | None = None
    ) -> ManagedSession:
        """Install a freshly negotiated key for ``peer_id``.

        ``role`` overrides the manager's own role for this one session's
        record channel: two initiator-role managers that negotiated a
        *peer-to-peer* session (fleet V2V) must still take opposite
        directions on the wire, so the responding side installs its half
        with ``role="B"``.
        """
        key = bytes(peer_id)
        generation = self._generations.get(key, 0) + 1
        self._generations[key] = generation
        session = ManagedSession(
            peer_id=key,
            channel=SecureSession(
                session_key, self.role if role is None else role
            ),
            established_at=self._clock(),
            generation=generation,
        )
        self.sessions[key] = session
        self.established_count += 1
        return session

    def session_for(self, peer_id: bytes) -> ManagedSession:
        """The live session for a peer; raises if absent or expired."""
        try:
            session = self.sessions[bytes(peer_id)]
        except KeyError:
            raise SessionExpired(
                f"no session with peer {peer_id.hex()}"
            ) from None
        self._check_budget(session)
        return session

    def _check_budget(self, session: ManagedSession) -> None:
        age = self._clock() - session.established_at
        if age > self.policy.max_age_seconds:
            self._drop(session)
            raise SessionExpired(
                f"session with {session.peer_id.hex()} exceeded"
                f" {self.policy.max_age_seconds} s (age {age:.0f} s)"
            )
        if session.records_used >= self.policy.max_records:
            self._drop(session)
            raise SessionExpired(
                f"session with {session.peer_id.hex()} exhausted its"
                f" {self.policy.max_records}-record budget"
            )

    def _drop(self, session: ManagedSession) -> None:
        self.sessions.pop(session.peer_id, None)

    def drop(self, peer_id: bytes) -> bool:
        """Explicitly tear down the session with a peer, if any.

        The churn paths (gateway failover, live migration, rejoin) retire
        keys *before* their budgets expire; dropping through the manager —
        rather than reaching into :attr:`sessions` — guarantees the dead
        half can only ever see :class:`SessionExpired` afterwards, never a
        wrong-key MAC failure, while the peer's generation counter keeps
        advancing monotonically across the next :meth:`install`.

        Returns:
            True if a live session was dropped, False if none existed.
        """
        return self.sessions.pop(bytes(peer_id), None) is not None

    def generation_of(self, peer_id: bytes) -> int:
        """Highest generation ever installed for a peer (0 if never)."""
        return self._generations.get(bytes(peer_id), 0)

    def needs_rekey(self, peer_id: bytes) -> bool:
        """True if the peer has no live session under the policy."""
        try:
            self.session_for(peer_id)
        except SessionExpired:
            return True
        return False

    # -- traffic ----------------------------------------------------------------

    def send(self, peer_id: bytes, plaintext: bytes) -> bytes:
        """Encrypt one record to a peer (counts against the budget)."""
        session = self.session_for(peer_id)
        record = session.channel.encrypt(plaintext)
        session.records_used += 1
        return record

    def receive(self, peer_id: bytes, record: bytes) -> bytes:
        """Decrypt one record from a peer (counts against the budget)."""
        session = self.session_for(peer_id)
        plaintext = session.channel.decrypt(record)
        session.records_used += 1
        return plaintext


def connect_managers(
    manager_a: SessionManager, manager_b: SessionManager
) -> tuple[bytes, bytes]:
    """Establish (or re-establish) a session between two managers.

    Runs the configured KD protocol between fresh contexts from both
    sides and installs the resulting key on both managers.  Returns the
    two peer identities ``(id_of_b_seen_by_a, id_of_a_seen_by_b)``.
    """
    if manager_a.protocol != manager_b.protocol:
        raise ProtocolError("managers configured for different protocols")
    if manager_a.role == manager_b.role:
        raise ProtocolError("managers must take opposite roles")
    ctx_a = manager_a.context_factory()
    ctx_b = manager_b.context_factory()
    initiator_mgr = manager_a if manager_a.role == "A" else manager_b
    responder_mgr = manager_b if initiator_mgr is manager_a else manager_a
    initiator_ctx = ctx_a if initiator_mgr is manager_a else ctx_b
    responder_ctx = ctx_b if initiator_mgr is manager_a else ctx_a
    transcript = run_named_protocol(
        manager_a.protocol, initiator_ctx, responder_ctx
    )
    initiator_mgr.install(
        responder_ctx.device_id, transcript.party_a.session_key
    )
    responder_mgr.install(
        initiator_ctx.device_id, transcript.party_b.session_key
    )
    return responder_ctx.device_id, initiator_ctx.device_id
