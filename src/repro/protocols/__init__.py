"""Key-derivation protocols for ECQV implicit certificate architectures.

The paper's contribution (STS-ECQV dynamic key derivation, with Opt. I/II
schedules) plus the three state-of-the-art baselines it is evaluated
against, all sharing one party/message/transcript framework with exact
Table II wire layouts and per-operation cost tracing.
"""

from .base import (
    Message,
    OP1,
    OP2,
    OP3,
    OP4,
    OP_SYM,
    Operation,
    Party,
    ProtocolTranscript,
    ROLE_A,
    ROLE_B,
    SessionContext,
    StepRecord,
    run_protocol,
)
from .group import GroupLeader, GroupMember, form_group
from .manager import (
    ManagedSession,
    SessionExpired,
    SessionManager,
    SessionPolicy,
    connect_managers,
)
from .pool import EphemeralPool
from .poramb import PorambParty, install_pairwise_key, make_poramb_pair
from .provisioning import (
    ProvisioningDevice,
    ProvisioningGateway,
    provision_over_network,
)
from .ratchet import RatchetingSession, next_epoch_key, ratcheting_pair
from .registry import (
    PROTOCOLS,
    ProtocolInfo,
    SECURITY_ORDER,
    TABLE_ORDER,
    get_protocol,
    run_named_protocol,
)
from .s_ecdsa import SEcdsaParty, make_s_ecdsa_pair
from .scianc import SciancParty, make_scianc_pair
from .session import (
    SecureSession,
    open_record_with_key,
    record_overhead,
    session_pair,
)
from .sts import (
    SCHEDULE_OPT1,
    SCHEDULE_OPT2,
    SCHEDULE_SEQUENTIAL,
    StsParty,
    make_sts_pair,
)
from .wire import (
    ACK_BYTE,
    ENC_KEY_SIZE,
    ID_SIZE,
    MAC_KEY_SIZE,
    NONCE_SIZE,
    SESSION_KEY_SIZE,
    decode_point_raw,
    derive_session_key,
    enc_key,
    encode_point_raw,
    mac_key,
)

__all__ = [
    "ACK_BYTE",
    "ENC_KEY_SIZE",
    "EphemeralPool",
    "GroupLeader",
    "GroupMember",
    "ID_SIZE",
    "MAC_KEY_SIZE",
    "ManagedSession",
    "Message",
    "NONCE_SIZE",
    "OP1",
    "OP2",
    "OP3",
    "OP4",
    "OP_SYM",
    "Operation",
    "PROTOCOLS",
    "Party",
    "PorambParty",
    "ProtocolInfo",
    "ProtocolTranscript",
    "ProvisioningDevice",
    "ProvisioningGateway",
    "RatchetingSession",
    "ROLE_A",
    "ROLE_B",
    "SCHEDULE_OPT1",
    "SCHEDULE_OPT2",
    "SCHEDULE_SEQUENTIAL",
    "SECURITY_ORDER",
    "SEcdsaParty",
    "SessionExpired",
    "SessionManager",
    "SessionPolicy",
    "SESSION_KEY_SIZE",
    "SciancParty",
    "SecureSession",
    "SessionContext",
    "StepRecord",
    "StsParty",
    "TABLE_ORDER",
    "connect_managers",
    "decode_point_raw",
    "derive_session_key",
    "enc_key",
    "encode_point_raw",
    "form_group",
    "get_protocol",
    "install_pairwise_key",
    "mac_key",
    "make_poramb_pair",
    "next_epoch_key",
    "provision_over_network",
    "ratcheting_pair",
    "make_s_ecdsa_pair",
    "make_scianc_pair",
    "make_sts_pair",
    "open_record_with_key",
    "record_overhead",
    "run_named_protocol",
    "run_protocol",
    "session_pair",
]
