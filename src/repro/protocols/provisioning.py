"""Certificate provisioning over the network (paper Fig. 1, stages 1–2).

The evaluation protocols assume credentials are already in place; in the
prototype (§V-C) "the devices also communicate with a more powerful CA
gateway (represented with a Raspberry Pi 4) to handle the initial device
authentication and certificate distribution".  This module puts that
stage on the wire:

    Device -> CA   P1: ID(16), DevAuthMAC(32), ReqPoint(33)
    CA -> Device   P2: Cert(101), PrivRecon(32), CaAuthMAC(32)

Device authentication (stage 1) uses a factory-provisioned enrolment key
shared between the device and the CA — the paper's "device authentication
and deployment" phase depends on the main system architecture; a
per-device enrolment secret is the common automotive choice.  The MAC in
P1 authenticates the request point and freshness; the MAC in P2
authenticates the CA response, so a forged gateway cannot plant
certificates.  The ECQV math itself is :mod:`repro.ecqv`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ec import Curve, decode_point, encode_point
from ..ecqv import (
    CertificateAuthority,
    CertificateRequest,
    CertificateRequester,
    EcqvCredential,
    IssuedCertificate,
)
from ..errors import AuthenticationError, ProtocolError
from ..primitives import HmacDrbg, hmac
from ..utils import bytes_to_int, constant_time_equal, int_to_bytes
from .base import Message

#: Wire sizes of the provisioning exchange on secp256r1.
REQUEST_SIZE = 16 + 32 + 33   # ID + MAC + compressed point = 81 bytes
RESPONSE_SIZE = 101 + 32 + 32  # cert + r + MAC = 165 bytes


@dataclass
class ProvisioningDevice:
    """Device side of on-wire certificate provisioning.

    Args:
        curve: domain parameters.
        device_id: 16-byte identity.
        enrolment_key: factory-shared secret with the CA.
        rng: the device's DRBG.
    """

    curve: Curve
    device_id: bytes
    enrolment_key: bytes
    rng: HmacDrbg

    def __post_init__(self) -> None:
        self._requester = CertificateRequester(
            self.curve, self.device_id, self.rng
        )

    def make_request(self) -> Message:
        """Stage-1/2 request: identity, auth MAC, compressed request point."""
        request = self._requester.create_request()
        point_bytes = encode_point(request.request_point, compressed=True)
        tag = hmac(
            self.enrolment_key, b"enrol-req" + self.device_id + point_bytes
        )
        return Message(
            sender="D",
            label="P1",
            fields=(
                ("ID", self.device_id),
                ("DevAuthMAC", tag),
                ("ReqPoint", point_bytes),
            ),
        )

    def process_response(self, response: Message, ca_public) -> EcqvCredential:
        """Verify the CA MAC, then run SEC 4 key reconstruction."""
        cert_bytes = response.field_value("Cert")
        recon_bytes = response.field_value("PrivRecon")
        expected = hmac(
            self.enrolment_key,
            b"enrol-resp" + self.device_id + cert_bytes + recon_bytes,
        )
        if not constant_time_equal(response.field_value("CaAuthMAC"), expected):
            raise AuthenticationError(
                "provisioning: CA response MAC verification failed"
            )
        from ..ecqv import Certificate

        issued = IssuedCertificate(
            certificate=Certificate.decode(cert_bytes),
            private_reconstruction=bytes_to_int(recon_bytes),
        )
        return self._requester.process_response(issued, ca_public)


@dataclass
class ProvisioningGateway:
    """CA-gateway side: authenticates devices and issues certificates.

    Args:
        ca: the certificate authority (typically on the high-end gateway).
        enrolment_keys: device id → factory enrolment secret.
    """

    ca: CertificateAuthority
    enrolment_keys: dict[bytes, bytes]

    def handle_request(
        self, request: Message, validity_seconds: int = 24 * 3600
    ) -> Message:
        """Authenticate the device (stage 1) and issue (stage 2)."""
        if request.label != "P1":
            raise ProtocolError(
                f"provisioning gateway expected P1, got {request.label}"
            )
        device_id = request.field_value("ID")
        try:
            key = self.enrolment_keys[bytes(device_id)]
        except KeyError:
            raise AuthenticationError(
                f"provisioning: unknown device {device_id.hex()}"
            ) from None
        point_bytes = request.field_value("ReqPoint")
        expected = hmac(key, b"enrol-req" + device_id + point_bytes)
        if not constant_time_equal(request.field_value("DevAuthMAC"), expected):
            raise AuthenticationError(
                "provisioning: device authentication MAC failed"
            )
        point = decode_point(self.ca.curve, point_bytes)
        issued = self.ca.issue(
            CertificateRequest(subject_id=device_id, request_point=point),
            validity_seconds=validity_seconds,
        )
        cert_bytes = issued.certificate.encode()
        recon_bytes = int_to_bytes(
            issued.private_reconstruction, self.ca.curve.scalar_bytes
        )
        tag = hmac(key, b"enrol-resp" + device_id + cert_bytes + recon_bytes)
        return Message(
            sender="CA",
            label="P2",
            fields=(
                ("Cert", cert_bytes),
                ("PrivRecon", recon_bytes),
                ("CaAuthMAC", tag),
            ),
        )


def provision_over_network(
    device: ProvisioningDevice,
    gateway: ProvisioningGateway,
    stack=None,
) -> tuple[EcqvCredential, float]:
    """Run the full provisioning round-trip, optionally over CAN-FD.

    Returns the credential and the bus time in milliseconds (0.0 when no
    network stack is supplied).
    """
    request = device.make_request()
    bus_ms = 0.0
    if stack is not None:
        bus_ms += stack.transfer_ms(request.payload)
    response = gateway.handle_request(request)
    if stack is not None:
        bus_ms += stack.transfer_ms(response.payload)
    credential = device.process_response(response, gateway.ca.public_key)
    return credential, bus_ms
