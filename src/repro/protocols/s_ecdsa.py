"""S-ECDSA: the static ECDSA key-derivation baseline (Basic et al. [5]).

Message flow (paper Table II)::

    A -> B   A1: ID_A(16), Nonce_A(32)
    B -> A   B1: ID_B(16), Cert_B(101), Sign_B(64), Nonce_B(32)
    A -> B   A2: Cert_A(101), Sign_A(64)
    B -> A   B2: ACK(1)                         [+ext: Fin_B(96)]
    A -> B   A3: Fin_A(96)                      [ext only]

The underlying secret is the **static** Diffie–Hellman product of the
certificate keys (``Sk = Prk_a * Puk_b``, paper §II-A); the exchanged
nonces only diversify the KDF output.  Because both certificates and
nonces are visible on the wire, anyone who later compromises a long-term
key can recompute every session key — the forward-secrecy gap the paper's
STS design closes.

The *extended* variant adds mutual key-confirmation ("finished") messages
after the style of Porambage et al.: symmetric-only, so its cost delta is
small (Table I shows ~0–3 %).
"""

from __future__ import annotations

from ..ecdsa import Signature, sign, static_shared_secret, verify
from ..ecqv import Certificate, reconstruct_public_key, validate_certificate
from ..errors import AuthenticationError, ProtocolError
from ..primitives import cbc_decrypt, cbc_encrypt, hmac
from ..utils import constant_time_equal
from .base import (
    Message,
    OP2,
    OP3,
    OP4,
    OP_SYM,
    Party,
    ROLE_A,
    ROLE_B,
    SessionContext,
)
from .wire import ACK_BYTE, NONCE_SIZE, derive_session_key, enc_key, mac_key

#: Finished message layout: IV(16) || CBC(tag(32) || ID(16) || status(16)).
FIN_SIZE = 96
_FIN_STATUS = b"session-confirm!"  # 16 bytes


class SEcdsaParty(Party):
    """One station of the static-ECDSA key derivation protocol.

    Args:
        ctx: the device's session context.
        role: initiator or responder.
        extended: enable the authenticated-acknowledgement extension
            ("S-ECDSA (ext.)" in Tables I and II).
    """

    protocol_name = "s-ecdsa"

    def __init__(
        self, ctx: SessionContext, role: str, extended: bool = False
    ) -> None:
        super().__init__(ctx, role)
        self.extended = extended
        self._nonce_own: bytes | None = None
        self._nonce_peer: bytes | None = None
        self._peer_cert: Certificate | None = None
        self._peer_public = None

    # -- building blocks ---------------------------------------------------------

    def _nonces_ordered(self) -> bytes:
        """``Nonce_A || Nonce_B`` regardless of which side we are."""
        if self.role == ROLE_A:
            return self._nonce_own + self._nonce_peer
        return self._nonce_peer + self._nonce_own

    def _sign_payload(self, signer_id: bytes, signer_role: str) -> bytes:
        """Nonce pair bound to the signer's identity and role."""
        return self._nonces_ordered() + signer_id + signer_role.encode()

    def _reconstruct_and_verify(self, cert_bytes: bytes, sig_bytes: bytes) -> None:
        """OP2 + OP4: implicit key reconstruction, then signature check."""
        with self.operation("pubkey_reconstruction", OP2):
            cert = Certificate.decode(cert_bytes)
            issuer_public = self.ctx.issuer_public_for(cert)
            validate_certificate(
                cert, issuer_public, self.ctx.now, self.ctx.policy
            )
            self._peer_cert = cert
            self._peer_public = reconstruct_public_key(cert, issuer_public)
        with self.operation("verify_peer_signature", OP4):
            curve = self.ctx.credential.certificate.curve
            signature = Signature.from_bytes(curve, sig_bytes)
            peer_role = ROLE_B if self.role == ROLE_A else ROLE_A
            payload = self._sign_payload(cert.subject_id, peer_role)
            if not verify(self._peer_public, payload, signature):
                raise AuthenticationError(
                    f"S-ECDSA: peer signature invalid at {self.role}"
                )
            self.peer_authenticated = True

    def _derive_static_key(self) -> None:
        """OP2: static DH secret + KDF (the SKD computation, §II-A)."""
        with self.operation("static_dh_and_kdf", OP2):
            secret = static_shared_secret(
                self.ctx.credential.private_key, self._peer_public
            )
            self.session_key = derive_session_key(secret, self._nonces_ordered())

    def _own_signature(self) -> bytes:
        """OP3: sign the nonce pair with the certificate key."""
        with self.operation("sign_nonces", OP3):
            signature = sign(
                self.ctx.credential.certificate.curve,
                self.ctx.credential.private_key,
                self._sign_payload(self.ctx.device_id, self.role),
            )
        return signature.to_bytes()

    def _make_finished(self) -> bytes:
        """Extension: encrypted key-confirmation blob (96 bytes)."""
        with self.operation("finished_generation", OP_SYM):
            tag = hmac(
                mac_key(self.session_key),
                b"finished" + self.role.encode() + self._nonces_ordered(),
            )
            iv = self.ctx.rng.generate(16)
            blob = cbc_encrypt(
                enc_key(self.session_key),
                iv,
                tag + self.ctx.device_id + _FIN_STATUS,
            )
        return iv + blob

    def _check_finished(self, fin: bytes) -> None:
        """Extension: validate the peer's key-confirmation blob."""
        if len(fin) != FIN_SIZE:
            raise ProtocolError(
                f"finished message must be {FIN_SIZE} bytes, got {len(fin)}"
            )
        with self.operation("finished_verification", OP_SYM):
            iv, blob = fin[:16], fin[16:]
            plain = cbc_decrypt(enc_key(self.session_key), iv, blob)
            tag, peer_id, status = plain[:32], plain[32:48], plain[48:]
            peer_role = ROLE_B if self.role == ROLE_A else ROLE_A
            expected = hmac(
                mac_key(self.session_key),
                b"finished" + peer_role.encode() + self._nonces_ordered(),
            )
            if status != _FIN_STATUS or not constant_time_equal(tag, expected):
                raise AuthenticationError(
                    f"S-ECDSA ext: finished verification failed at {self.role}"
                )
            if self._peer_cert and peer_id != self._peer_cert.subject_id:
                raise AuthenticationError(
                    "S-ECDSA ext: finished identity mismatch"
                )

    # -- state machine -------------------------------------------------------------

    def _advance(self, incoming: Message | None) -> Message | None:
        if self.role == ROLE_A:
            return self._advance_initiator(incoming)
        return self._advance_responder(incoming)

    def _advance_initiator(self, incoming: Message | None) -> Message | None:
        if incoming is None:
            with self.operation("nonce_generation", OP_SYM):
                self._nonce_own = self.ctx.rng.generate(NONCE_SIZE)
            return Message(
                sender=self.role,
                label="A1",
                fields=(
                    ("ID", self.ctx.device_id),
                    ("Nonce", self._nonce_own),
                ),
            )
        if incoming.label == "B1":
            self._nonce_peer = incoming.field_value("Nonce")
            self._reconstruct_and_verify(
                incoming.field_value("Cert"), incoming.field_value("Sign")
            )
            self._derive_static_key()
            sig = self._own_signature()
            return Message(
                sender=self.role,
                label="A2",
                fields=(
                    ("Cert", self.ctx.credential.certificate.encode()),
                    ("Sign", sig),
                ),
            )
        if incoming.label == "B2":
            if incoming.field_value("ACK") != ACK_BYTE:
                raise ProtocolError("S-ECDSA: malformed ACK")
            if self.extended:
                self._check_finished(incoming.field_value("Fin"))
                fin = self._make_finished()
                self._finish(self.session_key, self._peer_cert.subject_id)
                return Message(
                    sender=self.role, label="A3", fields=(("Fin", fin),)
                )
            self._finish(self.session_key, self._peer_cert.subject_id)
            return None
        raise ProtocolError(f"S-ECDSA initiator: unexpected {incoming.label}")

    def _advance_responder(self, incoming: Message | None) -> Message | None:
        if incoming is None:
            raise ProtocolError("S-ECDSA responder cannot initiate")
        if incoming.label == "A1":
            self._nonce_peer = incoming.field_value("Nonce")
            with self.operation("nonce_generation", OP_SYM):
                self._nonce_own = self.ctx.rng.generate(NONCE_SIZE)
            sig = self._own_signature()
            return Message(
                sender=self.role,
                label="B1",
                fields=(
                    ("ID", self.ctx.device_id),
                    ("Cert", self.ctx.credential.certificate.encode()),
                    ("Sign", sig),
                    ("Nonce", self._nonce_own),
                ),
            )
        if incoming.label == "A2":
            self._reconstruct_and_verify(
                incoming.field_value("Cert"), incoming.field_value("Sign")
            )
            self._derive_static_key()
            if self.extended:
                fin = self._make_finished()
                return Message(
                    sender=self.role,
                    label="B2",
                    fields=(("ACK", ACK_BYTE), ("Fin", fin)),
                )
            self._finish(self.session_key, self._peer_cert.subject_id)
            return Message(
                sender=self.role, label="B2", fields=(("ACK", ACK_BYTE),)
            )
        if incoming.label == "A3" and self.extended:
            self._check_finished(incoming.field_value("Fin"))
            self._finish(self.session_key, self._peer_cert.subject_id)
            return None
        raise ProtocolError(f"S-ECDSA responder: unexpected {incoming.label}")


def make_s_ecdsa_pair(
    ctx_a: SessionContext, ctx_b: SessionContext, extended: bool = False
) -> tuple[SEcdsaParty, SEcdsaParty]:
    """Create an initiator/responder S-ECDSA pair."""
    return (
        SEcdsaParty(ctx_a, ROLE_A, extended),
        SEcdsaParty(ctx_b, ROLE_B, extended),
    )
