"""STS-ECQV: the paper's dynamic key derivation protocol (Section IV).

Message flow (paper Fig. 2)::

    A -> B   A1: ID_A(16), XG_A(64)
    B -> A   B1: ID_B(16), Cert_B(101), XG_B(64), Resp_B(64)
    A -> B   A2: Cert_A(101), Resp_A(64)
    B -> A   B2: ACK(1)

Each station derives a fresh ephemeral ``X ∈ [1, n-1]``, ``XG = X*G``
(Eq. 2), the premaster ``K_PM = X_A * XG_B = X_B * XG_A`` (Eq. 3) and the
session key ``K_S = KDF(K_PM, salt)`` (Eq. 4).  Authentication is the STS
signature-inside-encryption construction (Algorithms 1 and 2): each side
signs the ephemeral pair with its *certificate* key and encrypts the
signature under the fresh session key; the peer reconstructs the ECDSA
verification key implicitly from the ECQV certificate (Eq. 1).

Operation classes follow the paper's §IV-C decomposition (Op1..Op4), which
the Opt. I / Opt. II schedulers consume.

Variants: :data:`SCHEDULE_SEQUENTIAL`, :data:`SCHEDULE_OPT1` and
:data:`SCHEDULE_OPT2` share this message flow byte-for-byte — the paper
stresses "the sent data is identical to the original protocol" — and only
change how the discrete-event simulator overlaps computations.
"""

from __future__ import annotations

from ..ecdsa import Signature, ephemeral_shared_secret, sign, verify
from ..ec import mul_base
from ..ecqv import Certificate, reconstruct_public_key, validate_certificate
from ..errors import AuthenticationError, ProtocolError
from .base import (
    Message,
    OP1,
    OP2,
    OP3,
    OP4,
    Party,
    ROLE_A,
    ROLE_B,
    SessionContext,
)
from .wire import (
    ACK_BYTE,
    decode_point_raw,
    decrypt_response,
    derive_session_key,
    encode_point_raw,
    encrypt_response,
)

SCHEDULE_SEQUENTIAL = "sequential"
SCHEDULE_OPT1 = "opt1"
SCHEDULE_OPT2 = "opt2"
SCHEDULES = (SCHEDULE_SEQUENTIAL, SCHEDULE_OPT1, SCHEDULE_OPT2)


class StsParty(Party):
    """One station of the STS-ECQV dynamic key derivation protocol.

    Args:
        ctx: the device's session context.
        role: initiator (:data:`ROLE_A`) or responder (:data:`ROLE_B`).
        schedule: execution schedule tag consumed by the simulator; does
            not change the wire protocol.
    """

    protocol_name = "sts"

    def __init__(
        self,
        ctx: SessionContext,
        role: str,
        schedule: str = SCHEDULE_SEQUENTIAL,
    ) -> None:
        super().__init__(ctx, role)
        if schedule not in SCHEDULES:
            raise ProtocolError(f"unknown STS schedule {schedule!r}")
        self.schedule = schedule
        self._ephemeral: int | None = None
        self._xg_own: bytes | None = None
        self._xg_peer: bytes | None = None
        self._peer_cert: Certificate | None = None

    # -- shared building blocks ------------------------------------------------

    def _op1_generate_ephemeral(self) -> None:
        """Op1: random EC point derivation (paper Eq. 2).

        With an :class:`~repro.protocols.pool.EphemeralPool` attached to
        the context, the pair was batch-precomputed and Op1 collapses to a
        queue pop (its cost was paid, amortized, at pool build time); an
        empty or absent pool falls back to the classic on-demand path.
        """
        curve = self.ctx.credential.certificate.curve
        pool = self.ctx.ephemeral_pool
        with self.operation("xg_generation", OP1):
            if pool is not None and len(pool):
                self._ephemeral, self._xg_own = pool.take(curve)
                return
            self._ephemeral = self.ctx.rng.random_scalar(curve.n)
            xg = mul_base(self._ephemeral, curve)
            self._xg_own = encode_point_raw(xg)

    def _derive_key(self) -> None:
        """Premaster + KDF halves of Op2 (Eqs. 3 and 4)."""
        curve = self.ctx.credential.certificate.curve
        peer_point = decode_point_raw(curve, self._xg_peer)
        premaster = ephemeral_shared_secret(self._ephemeral, peer_point)
        # Salt binds the key to this session's ephemeral pair, ordered by
        # initiator/responder so both sides agree.
        if self.role == ROLE_A:
            salt = self._xg_own + self._xg_peer
        else:
            salt = self._xg_peer + self._xg_own
        self.session_key = derive_session_key(premaster, salt)

    def _reconstruct_peer_key(self, cert_bytes: bytes):
        """Implicit public key derivation (Eq. 1) with policy validation.

        With a :class:`~repro.ecqv.TrustStore` on the context, the peer's
        issuer is resolved through the certificate chain first (so a peer
        enrolled at a different subordinate CA — a cross-shard vehicle —
        validates against the shared root); without one, ``ctx.ca_public``
        is the direct issuer exactly as in the single-CA deployment.
        """
        cert = Certificate.decode(cert_bytes)
        issuer_public = self.ctx.issuer_public_for(cert)
        validate_certificate(
            cert, issuer_public, self.ctx.now, self.ctx.policy
        )
        self._peer_cert = cert
        return reconstruct_public_key(cert, issuer_public)

    def _sign_payload(self) -> bytes:
        """The ``XG_own || XG_peer`` byte string this station signs."""
        return self._xg_own + self._xg_peer

    def _verify_payload(self) -> bytes:
        """The byte string the *peer* signed (its own XG first)."""
        return self._xg_peer + self._xg_own

    def _make_response(self) -> bytes:
        """Op3: Algorithm 1 — sign the ephemerals, encrypt under K_S."""
        dsign = sign(
            self.ctx.credential.certificate.curve,
            self.ctx.credential.private_key,
            self._sign_payload(),
        )
        return encrypt_response(self.session_key, self.role, dsign.to_bytes())

    def _check_response(self, resp: bytes, peer_public) -> None:
        """Op4: Algorithm 2 — decrypt and verify the peer's response."""
        curve = self.ctx.credential.certificate.curve
        peer_role = ROLE_B if self.role == ROLE_A else ROLE_A
        dsign_bytes = decrypt_response(self.session_key, peer_role, resp)
        signature = Signature.from_bytes(curve, dsign_bytes)
        if not verify(peer_public, self._verify_payload(), signature):
            raise AuthenticationError(
                f"STS: peer response verification failed at {self.role}"
            )
        self.peer_authenticated = True

    # -- state machine -----------------------------------------------------------

    def _advance(self, incoming: Message | None) -> Message | None:
        if self.role == ROLE_A:
            return self._advance_initiator(incoming)
        return self._advance_responder(incoming)

    def _advance_initiator(self, incoming: Message | None) -> Message | None:
        if incoming is None:
            # Step A1: fresh ephemeral, send identity + XG.
            self._op1_generate_ephemeral()
            return Message(
                sender=self.role,
                label="A1",
                fields=(
                    ("ID", self.ctx.device_id),
                    ("XG", self._xg_own),
                ),
            )
        if incoming.label == "B1":
            self._xg_peer = incoming.field_value("XG")
            with self.operation("pubkey_and_premaster", OP2):
                peer_public = self._reconstruct_peer_key(
                    incoming.field_value("Cert")
                )
                self._derive_key()
            with self.operation("verify_response", OP4):
                self._check_response(incoming.field_value("Resp"), peer_public)
            with self.operation("sign_response", OP3):
                resp = self._make_response()
            return Message(
                sender=self.role,
                label="A2",
                fields=(
                    ("Cert", self.ctx.credential.certificate.encode()),
                    ("Resp", resp),
                ),
            )
        if incoming.label == "B2":
            if incoming.field_value("ACK") != ACK_BYTE:
                raise ProtocolError("STS: malformed ACK")
            self._finish(self.session_key, self._peer_cert.subject_id)
            return None
        raise ProtocolError(f"STS initiator: unexpected {incoming.label}")

    def _advance_responder(self, incoming: Message | None) -> Message | None:
        msg = self._expect(incoming, "A1" if self._xg_peer is None else "A2")
        if msg.label == "A1":
            self._xg_peer = msg.field_value("XG")
            self._op1_generate_ephemeral()
            with self.operation("premaster_derivation", OP2):
                self._derive_key()
            with self.operation("sign_response", OP3):
                resp = self._make_response()
            return Message(
                sender=self.role,
                label="B1",
                fields=(
                    ("ID", self.ctx.device_id),
                    ("Cert", self.ctx.credential.certificate.encode()),
                    ("XG", self._xg_own),
                    ("Resp", resp),
                ),
            )
        # A2: the initiator's certificate and encrypted signature.
        with self.operation("pubkey_reconstruction", OP2):
            peer_public = self._reconstruct_peer_key(msg.field_value("Cert"))
        with self.operation("verify_response", OP4):
            self._check_response(msg.field_value("Resp"), peer_public)
        self._finish(self.session_key, self._peer_cert.subject_id)
        return Message(
            sender=self.role, label="B2", fields=(("ACK", ACK_BYTE),)
        )


def make_sts_pair(
    ctx_a: SessionContext,
    ctx_b: SessionContext,
    schedule: str = SCHEDULE_SEQUENTIAL,
) -> tuple[StsParty, StsParty]:
    """Create an initiator/responder pair sharing one schedule tag."""
    return (
        StsParty(ctx_a, ROLE_A, schedule),
        StsParty(ctx_b, ROLE_B, schedule),
    )
