"""SCIANC: the minimal-airtime baseline (Sciancalepore et al. [4]).

Message flow (paper Table II)::

    A -> B   A1: ID_A(16), Nonce_A(32), Cert_A(101)
    B -> A   B1: ID_B(16), Nonce_B(32), Cert_B(101)
    A -> B   A2: AuthMAC_A(32)
    B -> A   B2: AuthMAC_B(32)

Key derivation is static (SKD): the secret is ``d_own * Q_peer`` where
``Q_peer`` is implicitly reconstructed from the peer certificate.  The
implementation *fuses* reconstruction and derivation into one
Strauss–Shamir double multiplication::

    d * Q = d * (e * P + Q_CA) = (d*e) * P + d * Q_CA

which is the trick that makes SCIANC the fastest protocol in Table I
(~25 % of S-ECDSA's time) — at the price of the security gaps Table III
records: nonces only diversify the KDF (they travel in clear), and mutual
authentication is a MAC keyed *by the session key itself*, so a session
key compromise breaks future authentication too (paper §V-D).
"""

from __future__ import annotations

from ..ec import mul_double
from ..ecqv import (
    Certificate,
    cert_digest_scalar,
    validate_certificate,
)
from ..errors import AuthenticationError, ProtocolError
from ..primitives import hmac
from ..utils import constant_time_equal, int_to_bytes
from .base import (
    Message,
    OP2,
    OP_SYM,
    Party,
    ROLE_A,
    ROLE_B,
    SessionContext,
)
from .wire import NONCE_SIZE, derive_session_key, mac_key


class SciancParty(Party):
    """One station of the SCIANC key agreement protocol."""

    protocol_name = "scianc"

    def __init__(self, ctx: SessionContext, role: str) -> None:
        super().__init__(ctx, role)
        self._nonce_own: bytes | None = None
        self._nonce_peer: bytes | None = None
        self._peer_cert: Certificate | None = None

    # -- building blocks ---------------------------------------------------------

    def _nonces_ordered(self) -> bytes:
        if self.role == ROLE_A:
            return self._nonce_own + self._nonce_peer
        return self._nonce_peer + self._nonce_own

    def _fused_derive(self, cert_bytes: bytes) -> None:
        """OP2: fused reconstruct-and-derive (single double multiplication)."""
        with self.operation("fused_reconstruct_derive", OP2):
            cert = Certificate.decode(cert_bytes)
            issuer_public = self.ctx.issuer_public_for(cert)
            validate_certificate(
                cert, issuer_public, self.ctx.now, self.ctx.policy
            )
            self._peer_cert = cert
            curve = cert.curve
            d = self.ctx.credential.private_key
            e = cert_digest_scalar(cert.encode(), curve)
            shared = mul_double(
                (d * e) % curve.n,
                cert.reconstruction_point,
                d,
                issuer_public,
            )
            if shared.is_infinity:
                raise ProtocolError("SCIANC: degenerate shared point")
            secret = int_to_bytes(shared.x, curve.field_bytes)
            self.session_key = derive_session_key(
                secret, self._nonces_ordered()
            )

    def _auth_tag(self, role: str) -> bytes:
        """Session-key-keyed authentication MAC (the protocol's weakness)."""
        return hmac(
            mac_key(self.session_key),
            b"scianc-auth" + role.encode() + self._nonces_ordered(),
        )

    def _check_auth_tag(self, tag: bytes) -> None:
        peer_role = ROLE_B if self.role == ROLE_A else ROLE_A
        with self.operation("verify_auth_mac", OP_SYM):
            if not constant_time_equal(tag, self._auth_tag(peer_role)):
                raise AuthenticationError(
                    f"SCIANC: auth MAC mismatch at {self.role}"
                )
            self.peer_authenticated = True

    def _hello_message(self, label: str) -> Message:
        return Message(
            sender=self.role,
            label=label,
            fields=(
                ("ID", self.ctx.device_id),
                ("Nonce", self._nonce_own),
                ("Cert", self.ctx.credential.certificate.encode()),
            ),
        )

    # -- state machine -------------------------------------------------------------

    def _advance(self, incoming: Message | None) -> Message | None:
        if self.role == ROLE_A:
            return self._advance_initiator(incoming)
        return self._advance_responder(incoming)

    def _advance_initiator(self, incoming: Message | None) -> Message | None:
        if incoming is None:
            with self.operation("nonce_generation", OP_SYM):
                self._nonce_own = self.ctx.rng.generate(NONCE_SIZE)
            return self._hello_message("A1")
        if incoming.label == "B1":
            self._nonce_peer = incoming.field_value("Nonce")
            self._fused_derive(incoming.field_value("Cert"))
            with self.operation("auth_mac_generation", OP_SYM):
                tag = self._auth_tag(self.role)
            return Message(
                sender=self.role, label="A2", fields=(("AuthMAC", tag),)
            )
        if incoming.label == "B2":
            self._check_auth_tag(incoming.field_value("AuthMAC"))
            self._finish(self.session_key, self._peer_cert.subject_id)
            return None
        raise ProtocolError(f"SCIANC initiator: unexpected {incoming.label}")

    def _advance_responder(self, incoming: Message | None) -> Message | None:
        if incoming is None:
            raise ProtocolError("SCIANC responder cannot initiate")
        if incoming.label == "A1":
            self._nonce_peer = incoming.field_value("Nonce")
            with self.operation("nonce_generation", OP_SYM):
                self._nonce_own = self.ctx.rng.generate(NONCE_SIZE)
            self._fused_derive(incoming.field_value("Cert"))
            return self._hello_message("B1")
        if incoming.label == "A2":
            self._check_auth_tag(incoming.field_value("AuthMAC"))
            with self.operation("auth_mac_generation", OP_SYM):
                tag = self._auth_tag(self.role)
            self._finish(self.session_key, self._peer_cert.subject_id)
            return Message(
                sender=self.role, label="B2", fields=(("AuthMAC", tag),)
            )
        raise ProtocolError(f"SCIANC responder: unexpected {incoming.label}")


def make_scianc_pair(
    ctx_a: SessionContext, ctx_b: SessionContext
) -> tuple[SciancParty, SciancParty]:
    """Create an initiator/responder SCIANC pair."""
    return SciancParty(ctx_a, ROLE_A), SciancParty(ctx_b, ROLE_B)
