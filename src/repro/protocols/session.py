"""Authenticated-encryption session channel over an established key.

Once a KD protocol completes, both stations hold ``SESSION_KEY_SIZE`` bytes
of key material.  :class:`SecureSession` turns that into a bidirectional
encrypt-then-MAC record channel (AES-128-CTR + HMAC-SHA-256), the "Encrypted
Session" of the paper's Fig. 1 and the App-Data traffic of the Fig. 6 CAN
stack.  The security attack simulations decrypt recorded channels with
recovered keys, so this layer must be byte-exact and deterministic.

Record layout::

    seq(4) || direction(1) || ciphertext(len(plaintext)) || tag(16)
"""

from __future__ import annotations

from ..errors import AuthenticationError, ProtocolError
from ..primitives import ctr_crypt, hmac
from ..utils import constant_time_equal, int_to_bytes
from .wire import SESSION_KEY_SIZE, enc_key, mac_key

HEADER_SIZE = 5
TAG_SIZE = 16
_DIR = {"A": b"\x0a", "B": b"\x0b"}


def record_overhead() -> int:
    """Bytes a record adds over its plaintext."""
    return HEADER_SIZE + TAG_SIZE


class SecureSession:
    """One endpoint of an established secure session.

    Args:
        session_key: the KD protocol output (:data:`SESSION_KEY_SIZE` bytes).
        role: this endpoint's role, ``"A"`` or ``"B"``; the sender role is
            bound into each record's nonce and MAC, preventing reflection.
    """

    def __init__(self, session_key: bytes, role: str) -> None:
        if len(session_key) != SESSION_KEY_SIZE:
            raise ProtocolError(
                f"session key must be {SESSION_KEY_SIZE} bytes,"
                f" got {len(session_key)}"
            )
        if role not in _DIR:
            raise ProtocolError(f"role must be 'A' or 'B', got {role!r}")
        self.role = role
        self._enc_key = enc_key(session_key)
        self._mac_key = mac_key(session_key)
        self._send_seq = 0
        self._recv_seq: dict[str, int] = {r: 0 for r in _DIR}

    def _nonce(self, seq: int, direction: str) -> bytes:
        """Per-record CTR nonce: direction byte, zero pad, 32-bit sequence."""
        return _DIR[direction] + b"\x00" * 11 + int_to_bytes(seq, 4)

    def encrypt(self, plaintext: bytes) -> bytes:
        """Produce the next outbound record."""
        seq = self._send_seq
        self._send_seq += 1
        header = int_to_bytes(seq, 4) + _DIR[self.role]
        ciphertext = ctr_crypt(
            self._enc_key, self._nonce(seq, self.role), plaintext
        )
        tag = hmac(self._mac_key, header + ciphertext)[:TAG_SIZE]
        return header + ciphertext + tag

    def decrypt(self, record: bytes) -> bytes:
        """Verify and open an inbound record (enforces sequence order)."""
        plaintext, seq, direction = open_record_with_key(
            self._enc_key, self._mac_key, record
        )
        if direction == self.role:
            raise AuthenticationError("record reflected from our own role")
        expected = self._recv_seq[direction]
        if seq != expected:
            raise AuthenticationError(
                f"out-of-order record: got seq {seq}, expected {expected}"
            )
        self._recv_seq[direction] = seq + 1
        return plaintext


def open_record_with_key(
    encryption_key: bytes, authentication_key: bytes, record: bytes
) -> tuple[bytes, int, str]:
    """Open a record given raw keys (no endpoint state).

    Used both by :class:`SecureSession` and by the attack simulations,
    which model an adversary that recovered the keys later.

    Returns:
        ``(plaintext, sequence, sender_role)``.
    """
    if len(record) < HEADER_SIZE + TAG_SIZE:
        raise AuthenticationError("record too short")
    header = record[:HEADER_SIZE]
    ciphertext = record[HEADER_SIZE:-TAG_SIZE]
    tag = record[-TAG_SIZE:]
    expected = hmac(authentication_key, header + ciphertext)[:TAG_SIZE]
    if not constant_time_equal(tag, expected):
        raise AuthenticationError("record MAC verification failed")
    seq = int.from_bytes(header[:4], "big")
    dir_byte = header[4:5]
    direction = next((r for r, b in _DIR.items() if b == dir_byte), None)
    if direction is None:
        raise AuthenticationError("record has invalid direction byte")
    nonce = _DIR[direction] + b"\x00" * 11 + header[:4]
    plaintext = ctr_crypt(encryption_key, nonce, ciphertext)
    return plaintext, seq, direction


def session_pair(session_key: bytes) -> tuple[SecureSession, SecureSession]:
    """Both endpoints of one established session (testing convenience)."""
    return SecureSession(session_key, "A"), SecureSession(session_key, "B")
