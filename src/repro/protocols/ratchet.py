"""Intra-session key ratcheting (an extension beyond the paper).

The paper motivates dynamic key derivation with the danger of "longer
than the intended use of the same session key".  STS fixes this *between*
sessions; this module adds the complementary in-session hygiene: a
one-way HKDF ratchet that both endpoints advance in lockstep, so even the
current session key's exposure does not reveal records from earlier
epochs of the same session.

The ratchet is deterministic (no extra messages): both sides derive

    K_{i+1} = HKDF(K_i, info = "session-ratchet" || epoch)

and discard ``K_i``.  :class:`RatchetingSession` advances automatically
every ``records_per_epoch`` outbound/inbound records; epochs are bound
into each record's associated data, so a peer that fails to ratchet
cannot keep talking.
"""

from __future__ import annotations

from ..errors import AuthenticationError, ProtocolError
from ..primitives import hkdf
from ..utils import int_to_bytes
from .session import SecureSession
from .wire import SESSION_KEY_SIZE


def next_epoch_key(session_key: bytes, epoch: int) -> bytes:
    """Derive the key material of ``epoch`` + 1 from the current key."""
    if len(session_key) != SESSION_KEY_SIZE:
        raise ProtocolError(
            f"session key must be {SESSION_KEY_SIZE} bytes,"
            f" got {len(session_key)}"
        )
    if epoch < 0:
        raise ProtocolError(f"negative epoch {epoch}")
    return hkdf(
        session_key,
        info=b"session-ratchet" + int_to_bytes(epoch + 1, 4),
        length=SESSION_KEY_SIZE,
    )


class RatchetingSession:
    """A :class:`SecureSession` that re-keys itself every N records.

    Both endpoints must use the same ``records_per_epoch``.  The epoch is
    prefixed to every record (2 bytes) so desynchronization is detected
    rather than silently producing garbage.

    Args:
        session_key: the KD protocol output (epoch-0 key).
        role: ``"A"`` or ``"B"``.
        records_per_epoch: records sent+received before ratcheting.
    """

    EPOCH_PREFIX = 2

    def __init__(
        self, session_key: bytes, role: str, records_per_epoch: int = 16
    ) -> None:
        if records_per_epoch < 1:
            raise ProtocolError("records_per_epoch must be >= 1")
        self.role = role
        self.records_per_epoch = records_per_epoch
        self.epoch = 0
        self._key = session_key
        self._session = SecureSession(session_key, role)
        self._records_this_epoch = 0

    @property
    def current_key(self) -> bytes:
        """The active epoch key (exposed for tests/attack simulations)."""
        return self._key

    def _maybe_ratchet(self) -> None:
        if self._records_this_epoch >= self.records_per_epoch:
            self.ratchet()

    def ratchet(self) -> None:
        """Advance to the next epoch, discarding the old key material."""
        self._key = next_epoch_key(self._key, self.epoch)
        self.epoch += 1
        self._session = SecureSession(self._key, self.role)
        self._records_this_epoch = 0

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt under the current epoch; auto-ratchet when due."""
        self._maybe_ratchet()
        self._records_this_epoch += 1
        return int_to_bytes(self.epoch, self.EPOCH_PREFIX) + self._session.encrypt(
            plaintext
        )

    def decrypt(self, record: bytes) -> bytes:
        """Verify the epoch tag and open the record."""
        self._maybe_ratchet()
        if len(record) < self.EPOCH_PREFIX:
            raise AuthenticationError("ratchet record too short")
        epoch = int.from_bytes(record[: self.EPOCH_PREFIX], "big")
        if epoch != self.epoch:
            raise AuthenticationError(
                f"epoch mismatch: record {epoch}, local {self.epoch}"
                " (peer out of ratchet sync)"
            )
        plaintext = self._session.decrypt(record[self.EPOCH_PREFIX :])
        self._records_this_epoch += 1
        return plaintext


def ratcheting_pair(
    session_key: bytes, records_per_epoch: int = 16
) -> tuple[RatchetingSession, RatchetingSession]:
    """Both endpoints of a ratcheting session (testing convenience)."""
    return (
        RatchetingSession(session_key, "A", records_per_epoch),
        RatchetingSession(session_key, "B", records_per_epoch),
    )
