"""Authenticated group keys on top of pairwise STS sessions (extension).

The paper's related work cites Puellen et al. on using implicit
certification to establish authenticated *group* keys for in-vehicle
networks; the paper itself stays pairwise.  This extension composes the
two: a group leader (typically the gateway) establishes a pairwise STS
session with every member — inheriting mutual ECQV/ECDSA authentication
and forward secrecy — and then distributes a random group key over those
sessions::

    GK1: GroupId(4), Epoch(4), WrappedKey(48), Tag(32)      (per member)

``WrappedKey`` is the group key under AES-CTR with a per-member,
per-epoch IV derived from the pairwise session key; ``Tag`` is an HMAC
under the pairwise MAC key covering the header, so members also get
leader authenticity.  Membership changes bump the epoch and redistribute,
which (combined with fresh randomness per epoch) gives both backward
secrecy for joiners and exclusion of revoked members.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AuthenticationError, ProtocolError
from ..primitives import ctr_crypt, hkdf, hmac
from ..utils import constant_time_equal, int_to_bytes
from .base import Message, SessionContext, run_protocol
from .sts import make_sts_pair
from .wire import SESSION_KEY_SIZE, enc_key, mac_key

GROUP_MSG_SIZE = 4 + 4 + SESSION_KEY_SIZE + 32


def _wrap_iv(pairwise_key: bytes, group_id: int, epoch: int) -> bytes:
    """Per-member, per-epoch CTR IV for group-key wrapping."""
    return hkdf(
        pairwise_key,
        info=b"group-wrap" + int_to_bytes(group_id, 4) + int_to_bytes(epoch, 4),
        length=16,
    )


def _header(group_id: int, epoch: int) -> bytes:
    return int_to_bytes(group_id, 4) + int_to_bytes(epoch, 4)


@dataclass
class GroupLeader:
    """The distributing side of the group-key protocol.

    Args:
        ctx: the leader's session context (credential, CA key, DRBG).
        group_id: 32-bit group identifier.
    """

    ctx: SessionContext
    group_id: int
    epoch: int = 0
    group_key: bytes | None = None
    _pairwise: dict[bytes, bytes] = field(default_factory=dict)

    def establish_member(self, member_ctx: SessionContext) -> bytes:
        """Run pairwise STS with a member; returns the member id."""
        leader_party, member_party = make_sts_pair(self.ctx, member_ctx)
        run_protocol(leader_party, member_party)
        member_id = bytes(member_ctx.device_id)
        self._pairwise[member_id] = leader_party.session_key
        return member_id

    def adopt_pairwise_key(self, member_id: bytes, session_key: bytes) -> None:
        """Register an externally-established pairwise session key."""
        if len(session_key) != SESSION_KEY_SIZE:
            raise ProtocolError("pairwise key has wrong size")
        self._pairwise[bytes(member_id)] = session_key

    @property
    def members(self) -> list[bytes]:
        """Current member identities (sorted for determinism)."""
        return sorted(self._pairwise)

    def rekey(self) -> None:
        """Draw a fresh group key and advance the epoch."""
        self.group_key = self.ctx.rng.generate(SESSION_KEY_SIZE)
        self.epoch += 1

    def distribute(self) -> dict[bytes, Message]:
        """Produce one GK1 message per member for the current epoch."""
        if not self._pairwise:
            raise ProtocolError("group has no members")
        if self.group_key is None:
            self.rekey()
        header = _header(self.group_id, self.epoch)
        messages: dict[bytes, Message] = {}
        for member_id, pairwise in self._pairwise.items():
            iv = _wrap_iv(pairwise, self.group_id, self.epoch)
            wrapped = ctr_crypt(enc_key(pairwise), iv, self.group_key)
            tag = hmac(mac_key(pairwise), b"group-key" + header + wrapped)
            messages[member_id] = Message(
                sender="L",
                label="GK1",
                fields=(
                    ("GroupId", header[:4]),
                    ("Epoch", header[4:]),
                    ("WrappedKey", wrapped),
                    ("Tag", tag),
                ),
            )
        return messages

    def revoke(self, member_id: bytes) -> dict[bytes, Message]:
        """Remove a member and redistribute a fresh key to the rest."""
        try:
            del self._pairwise[bytes(member_id)]
        except KeyError:
            raise ProtocolError(
                f"unknown group member {member_id.hex()}"
            ) from None
        self.rekey()
        return self.distribute()


@dataclass
class GroupMember:
    """The receiving side: unwraps group keys over its pairwise session."""

    device_id: bytes
    pairwise_key: bytes
    group_id: int
    epoch: int = 0
    group_key: bytes | None = None

    def accept(self, message: Message) -> bytes:
        """Verify and unwrap a GK1 message; returns the group key."""
        if message.label != "GK1":
            raise ProtocolError(f"expected GK1, got {message.label}")
        header = message.field_value("GroupId") + message.field_value("Epoch")
        group_id = int.from_bytes(header[:4], "big")
        epoch = int.from_bytes(header[4:], "big")
        if group_id != self.group_id:
            raise ProtocolError(
                f"group id mismatch: {group_id} != {self.group_id}"
            )
        if epoch <= self.epoch and self.group_key is not None:
            raise AuthenticationError(
                f"stale group epoch {epoch} (have {self.epoch})"
            )
        wrapped = message.field_value("WrappedKey")
        expected = hmac(
            mac_key(self.pairwise_key), b"group-key" + header + wrapped
        )
        if not constant_time_equal(message.field_value("Tag"), expected):
            raise AuthenticationError("group key distribution MAC failed")
        iv = _wrap_iv(self.pairwise_key, group_id, epoch)
        self.group_key = ctr_crypt(enc_key(self.pairwise_key), iv, wrapped)
        self.epoch = epoch
        return self.group_key


def form_group(
    leader_ctx: SessionContext,
    member_ctxs: dict[bytes, SessionContext],
    group_id: int = 1,
) -> tuple[GroupLeader, dict[bytes, GroupMember]]:
    """Establish pairwise sessions with every member and distribute a key.

    Returns the leader and the members, all holding the same group key.
    """
    leader = GroupLeader(ctx=leader_ctx, group_id=group_id)
    members: dict[bytes, GroupMember] = {}
    for member_id, member_ctx in member_ctxs.items():
        # Run STS pairwise - member side keeps its session key.
        leader_party, member_party = make_sts_pair(leader.ctx, member_ctx)
        run_protocol(leader_party, member_party)
        leader.adopt_pairwise_key(member_id, leader_party.session_key)
        members[bytes(member_id)] = GroupMember(
            device_id=bytes(member_id),
            pairwise_key=member_party.session_key,
            group_id=group_id,
        )
    for member_id, message in leader.distribute().items():
        members[member_id].accept(message)
    return leader, members
