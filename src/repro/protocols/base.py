"""Protocol framework: messages, parties, transcripts and the step driver.

Every key-derivation protocol in this library is written as a pair of
:class:`Party` state machines exchanging :class:`Message` objects with
exact wire layouts (the byte counts of the paper's Table II fall out of
these layouts).  Each party wraps every logical computation in a named
:class:`Operation` whose primitive invocations are captured by a
:class:`~repro.trace.CostTrace` — the raw material for the hardware timing
models, the Fig. 7 timeline simulation and the Opt. I/II schedulers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from .. import trace
from ..ec import Point
from ..ecqv import EcqvCredential, TrustStore, ValidationPolicy
from ..errors import ProtocolError
from ..primitives import HmacDrbg
from .pool import EphemeralPool

#: Roles of the two stations; "A" always initiates.
ROLE_A = "A"
ROLE_B = "B"

#: Operation classes used by the STS optimization analysis (paper §IV-C).
OP1 = "op1"  # request phase: random XG point derivation
OP2 = "op2"  # public key + premaster session key generations
OP3 = "op3"  # auth. signature derivation and encryption
OP4 = "op4"  # auth. signature decryption and verification
OP_SYM = "sym"  # cheap symmetric-only bookkeeping (MACs, KDF-only steps)


@dataclass(frozen=True)
class Message:
    """A protocol message with named, fixed-width fields.

    The wire representation is the concatenation of the field values; the
    named structure exists so the overhead analysis can report per-field
    byte counts exactly as the paper's Table II does.
    """

    sender: str
    label: str
    fields: tuple[tuple[str, bytes], ...]

    def field_value(self, name: str) -> bytes:
        """Value of a named field; raises :class:`ProtocolError` if absent."""
        for key, value in self.fields:
            if key == name:
                return value
        raise ProtocolError(f"message {self.label} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        """True if the message carries a field called ``name``."""
        return any(key == name for key, _ in self.fields)

    @property
    def payload(self) -> bytes:
        """Concatenated wire bytes of all fields."""
        return b"".join(value for _, value in self.fields)

    @property
    def size(self) -> int:
        """Application-layer size in bytes."""
        return sum(len(value) for _, value in self.fields)

    def summary(self) -> str:
        """Human-readable layout, e.g. ``A1: ID(16), XG(64)``."""
        parts = ", ".join(f"{name}({len(value)})" for name, value in self.fields)
        return f"{self.label}: {parts}"


@dataclass
class Operation:
    """One logical computation inside a protocol step.

    Attributes:
        name: semantic name (``"xg_generation"``, ``"derive_session_key"``…).
        op_class: one of :data:`OP1`..:data:`OP4`/:data:`OP_SYM`; the unit
            of the paper's optimization analysis.
        cost: primitive-invocation counts captured while the operation ran.
    """

    name: str
    op_class: str
    cost: trace.CostTrace


@dataclass
class StepRecord:
    """Everything one party did in reaction to one (possibly absent) message.

    Attributes:
        role: :data:`ROLE_A` or :data:`ROLE_B`.
        label: a human-readable step label (``"A1"``, ``"recv:B1"``…).
        operations: ordered computations performed during the step.
        message: the message sent at the end of the step, if any.
    """

    role: str
    label: str
    operations: list[Operation]
    message: Message | None


@dataclass
class SessionContext:
    """Per-device state a protocol party needs.

    Attributes:
        credential: the device's ECQV credential (cert + key pair).
        ca_public: the trusted CA public key ``Q_CA``.
        rng: the device's DRBG (ephemerals, nonces, IVs).
        now: current unix time for certificate validation.
        policy: certificate acceptance policy.
        pre_shared_keys: pairwise authentication keys indexed by peer
            identity — only the PORAMB baseline uses these (its documented
            deployment burden).
        ephemeral_pool: optional :class:`~repro.protocols.pool.EphemeralPool`
            of precomputed Op1 ephemerals; pool-aware protocols (STS) drain
            it instead of computing ``X*G`` per session.  ``None`` keeps
            the classic on-demand path.
        trust_store: optional :class:`~repro.ecqv.TrustStore` for
            multi-CA deployments; chain-aware protocols (STS) resolve a
            peer certificate's issuer through it, so peers enrolled at
            *different* subordinate CAs (cross-shard fleet members)
            authenticate via the shared root.  ``None`` keeps the classic
            single-CA path where ``ca_public`` is the direct issuer.
    """

    credential: EcqvCredential
    ca_public: Point
    rng: HmacDrbg
    now: int = 1_700_000_000
    policy: ValidationPolicy = field(default_factory=ValidationPolicy)
    pre_shared_keys: dict[bytes, bytes] = field(default_factory=dict)
    ephemeral_pool: "EphemeralPool | None" = None
    trust_store: "TrustStore | None" = None

    @property
    def device_id(self) -> bytes:
        """The device's 16-byte identity (from its certificate)."""
        return self.credential.subject_id

    def issuer_public_for(self, certificate) -> Point:
        """The trusted issuer key for a peer certificate.

        Resolved through the trust store when one is attached (the peer
        may be enrolled at any subordinate CA of the shared root — the
        multi-shard fleet case); otherwise ``ca_public`` is the direct
        issuer, the classic single-CA deployment.  Every
        certificate-validating protocol funnels through this, so all of
        them speak chained trust uniformly.
        """
        if self.trust_store is not None:
            return self.trust_store.resolve_issuer(certificate, self.now)
        return self.ca_public


class Party(ABC):
    """Abstract protocol party driven by :func:`run_protocol`.

    Subclasses implement :meth:`_advance`, reading ``incoming`` (``None``
    for the initiator's first step) and returning the next message or
    ``None`` when they have nothing further to send.  Completion is
    signalled by setting :attr:`complete`.
    """

    #: Protocol identifier, overridden by subclasses (e.g. ``"sts"``).
    protocol_name: str = "abstract"

    def __init__(self, ctx: SessionContext, role: str) -> None:
        if role not in (ROLE_A, ROLE_B):
            raise ProtocolError(f"invalid role {role!r}")
        self.ctx = ctx
        self.role = role
        self.records: list[StepRecord] = []
        self.session_key: bytes | None = None
        self.peer_id: bytes | None = None
        self.peer_authenticated = False
        self.complete = False
        self._step_ops: list[Operation] = []

    # -- operation recording -------------------------------------------------

    @contextmanager
    def operation(self, name: str, op_class: str) -> Iterator[trace.CostTrace]:
        """Record one named operation with its primitive cost trace."""
        with trace.trace(f"{self.protocol_name}:{self.role}:{name}") as t:
            yield t
        self._step_ops.append(Operation(name=name, op_class=op_class, cost=t))

    # -- stepping -------------------------------------------------------------

    def advance(self, incoming: Message | None) -> Message | None:
        """Process one step; returns the outgoing message, if any."""
        if self.complete:
            raise ProtocolError(
                f"{self.protocol_name} party {self.role} already complete"
            )
        self._step_ops = []
        outgoing = self._advance(incoming)
        label = (
            outgoing.label
            if outgoing is not None
            else f"recv:{incoming.label}" if incoming is not None else "idle"
        )
        self.records.append(
            StepRecord(
                role=self.role,
                label=label,
                operations=self._step_ops,
                message=outgoing,
            )
        )
        return outgoing

    @abstractmethod
    def _advance(self, incoming: Message | None) -> Message | None:
        """Protocol-specific state machine body."""

    # -- helpers --------------------------------------------------------------

    def _expect(self, incoming: Message | None, label: str) -> Message:
        """Require the incoming message to exist and carry ``label``."""
        if incoming is None:
            raise ProtocolError(
                f"{self.protocol_name} {self.role}: expected {label}, got nothing"
            )
        if incoming.label != label:
            raise ProtocolError(
                f"{self.protocol_name} {self.role}: expected {label},"
                f" got {incoming.label}"
            )
        return incoming

    def _finish(self, session_key: bytes, peer_id: bytes) -> None:
        """Mark the run complete with an established key."""
        self.session_key = session_key
        self.peer_id = peer_id
        self.complete = True

    def total_cost(self) -> trace.CostTrace:
        """Aggregate primitive counts over all recorded operations."""
        total = trace.CostTrace(f"{self.protocol_name}:{self.role}")
        for record in self.records:
            for op in record.operations:
                total.merge(op.cost)
        return total


@dataclass
class ProtocolTranscript:
    """The full record of one protocol run between two parties."""

    protocol_name: str
    messages: list[Message]
    party_a: Party
    party_b: Party

    @property
    def total_bytes(self) -> int:
        """Total application-layer bytes transmitted (Table II 'Total')."""
        return sum(m.size for m in self.messages)

    @property
    def n_steps(self) -> int:
        """Number of transmissions (Table II 'steps')."""
        return len(self.messages)

    def layout(self) -> list[str]:
        """Per-message field layouts, Table II style."""
        return [m.summary() for m in self.messages]

    def all_steps(self) -> list[StepRecord]:
        """Interleaved step records from both parties, in execution order."""
        # Parties alternate strictly (A starts), so interleave by index.
        merged: list[StepRecord] = []
        a_steps = self.party_a.records
        b_steps = self.party_b.records
        for i in range(max(len(a_steps), len(b_steps))):
            if i < len(a_steps):
                merged.append(a_steps[i])
            if i < len(b_steps):
                merged.append(b_steps[i])
        return merged


def run_protocol(
    party_a: Party, party_b: Party, max_steps: int = 16
) -> ProtocolTranscript:
    """Drive two parties to completion, collecting the transcript.

    Party A initiates.  Raises :class:`ProtocolError` if the parties fail
    to finish within ``max_steps`` half-steps or disagree on the session
    key (a correctness invariant every protocol here must satisfy).
    """
    if party_a.protocol_name != party_b.protocol_name:
        raise ProtocolError("parties speak different protocols")
    messages: list[Message] = []
    outgoing = party_a.advance(None)
    steps = 1
    current, other = party_b, party_a
    while outgoing is not None:
        if steps > max_steps:
            raise ProtocolError(
                f"{party_a.protocol_name}: no convergence in {max_steps} steps"
            )
        messages.append(outgoing)
        outgoing = current.advance(outgoing)
        current, other = other, current
        steps += 1
    if not (party_a.complete and party_b.complete):
        raise ProtocolError(
            f"{party_a.protocol_name}: run ended with incomplete parties"
        )
    if party_a.session_key != party_b.session_key:
        raise ProtocolError(
            f"{party_a.protocol_name}: session key mismatch between parties"
        )
    return ProtocolTranscript(
        protocol_name=party_a.protocol_name,
        messages=messages,
        party_a=party_a,
        party_b=party_b,
    )
