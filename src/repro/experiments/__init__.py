"""Experiment reproductions: one module per paper table/figure.

| id     | paper artifact                                   | entry point  |
|--------|--------------------------------------------------|--------------|
| fig3   | per-operation STS times (STM32F767)              | run_fig3     |
| fig4   | total KD time comparison (STM32F767)             | run_fig4     |
| tab1   | execution time, 7 variants × 4 devices           | run_table1   |
| tab2   | communication steps and bytes                    | run_table2   |
| fig7   | BMS↔EVCC prototype timeline over CAN-FD          | run_fig7     |
| tab3   | security property matrix                         | run_table3   |
| fig8   | threat-model block diagram                       | run_fig8     |
| energy | per-session energy estimates (PPK2 substitute)   | run_energy   |
| sweep  | device-capability sweep of the STS premium       | run_sweep    |

(The last two are derived analyses, not paper artifacts.)

``run_all()`` executes everything and returns the rendered reports;
``python -m repro.experiments`` prints them.
"""

from __future__ import annotations

from .energy import EnergyResult, run_energy
from .fig3 import Fig3Result, run_fig3
from .fig4 import Fig4Result, run_fig4
from .fig7 import Fig7Result, run_fig7
from .fig8 import Fig8Result, run_fig8
from .table1 import Table1Cell, Table1Result, run_table1
from .table2 import Table2Result, run_table2
from .sweep import SweepResult, run_sweep
from .table3 import Table3Result, run_table3

__all__ = [
    "EnergyResult",
    "Fig3Result",
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "Table1Cell",
    "Table1Result",
    "Table2Result",
    "SweepResult",
    "Table3Result",
    "run_all",
    "run_energy",
    "run_fig3",
    "run_fig4",
    "run_fig7",
    "run_fig8",
    "run_table1",
    "run_table2",
    "run_sweep",
    "run_table3",
]


def run_all() -> dict[str, str]:
    """Run every experiment; returns experiment id → rendered report."""
    table1 = run_table1()
    return {
        "tab1": table1.render(),
        "fig3": run_fig3().render(),
        "fig4": run_fig4(table1=table1).render(),
        "tab2": run_table2().render(),
        "fig7": run_fig7().render(),
        "tab3": run_table3().render(),
        "fig8": run_fig8().render(),
        "energy": run_energy().render(),
        "sweep": run_sweep().render(),
    }
