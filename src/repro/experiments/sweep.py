"""Experiment ``sweep``: where does the STS overhead stop mattering?

A derived analysis the paper's discussion invites: Table I spans four
discrete devices; this sweep treats device capability as a continuum
(scalar-multiplication cost from ATmega-class seconds down to
accelerated sub-millisecond) and reports, for each point,

* the absolute STS-vs-S-ECDSA premium (ms),
* whether the premium clears common latency budgets (e.g. a 100 ms
  startup-handshake budget, a 1 s diagnostic-session budget).

The relative premium is constant (~24 %, structural); the *absolute*
premium crosses below typical budgets between the mid-tier and high-end
classes — quantifying the paper's "good balance" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..hardware.cost import CostModel
from ..hardware.devices import STM32F767, DeviceModel
from ..protocols import run_protocol
from ..sim.schedule import protocol_total_ms
from ..testbed import TestBed, make_testbed

#: Scalar-mult costs swept (ms): ATmega-class down to HSM-class.
DEFAULT_SWEEP_MS = (4000.0, 1000.0, 300.0, 100.0, 30.0, 10.0, 3.0, 1.0, 0.3)

#: Latency budgets the premium is compared against (ms).
BUDGETS_MS = {"startup-100ms": 100.0, "diagnostic-1s": 1000.0}


@dataclass(frozen=True)
class SweepPoint:
    """One point of the capability sweep."""

    scalar_mult_ms: float
    s_ecdsa_ms: float
    sts_ms: float
    sts_opt2_ms: float

    @property
    def premium_ms(self) -> float:
        """Absolute STS premium over S-ECDSA."""
        return self.sts_ms - self.s_ecdsa_ms

    @property
    def premium_ratio(self) -> float:
        """Relative STS premium."""
        return self.sts_ms / self.s_ecdsa_ms - 1.0


@dataclass
class SweepResult:
    """The full capability sweep."""

    points: list[SweepPoint] = field(default_factory=list)

    def crossover_ms(self, budget_ms: float) -> float | None:
        """Largest swept scalar-mult cost whose premium fits the budget."""
        fitting = [
            p.scalar_mult_ms for p in self.points if p.premium_ms <= budget_ms
        ]
        return max(fitting) if fitting else None

    def ratio_is_structural(self, tolerance: float = 0.03) -> bool:
        """The relative premium must be (near-)constant across the sweep."""
        ratios = [p.premium_ratio for p in self.points]
        return max(ratios) - min(ratios) < tolerance

    def render(self) -> str:
        """ASCII table of the sweep."""
        lines = [
            "Device-capability sweep: STS premium vs scalar-mult cost",
            f"{'mult (ms)':>10s}{'S-ECDSA':>12s}{'STS':>12s}"
            f"{'opt.II':>12s}{'premium':>12s}{'ratio':>8s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.scalar_mult_ms:10.1f}{p.s_ecdsa_ms:12.1f}"
                f"{p.sts_ms:12.1f}{p.sts_opt2_ms:12.1f}"
                f"{p.premium_ms:12.1f}{p.premium_ratio:8.1%}"
            )
        for name, budget in BUDGETS_MS.items():
            crossover = self.crossover_ms(budget)
            lines.append(
                f"premium fits {name} budget up to mult cost:"
                f" {crossover if crossover is not None else 'never'} ms"
            )
        return "\n".join(lines)


def _scaled_device(base: DeviceModel, scalar_mult_ms: float) -> DeviceModel:
    """Base device rescaled to a target scalar-multiplication cost."""
    factor = scalar_mult_ms / base.cost.scalar_mult_ms
    return replace(
        base,
        name=f"sweep-{scalar_mult_ms}",
        cost=CostModel(
            scalar_mult_ms=scalar_mult_ms,
            hash_block_ms=base.cost.hash_block_ms * factor,
            extra_ms=dict(base.cost.extra_ms),
        ),
    )


def run_sweep(
    sweep_ms: tuple[float, ...] = DEFAULT_SWEEP_MS,
    testbed: TestBed | None = None,
) -> SweepResult:
    """Run the capability sweep (protocols executed once, priced per point)."""
    if testbed is None:
        testbed = make_testbed(seed=b"repro-sweep")
    transcripts = {}
    for protocol in ("s-ecdsa", "sts", "sts-opt2"):
        party_a, party_b = testbed.party_pair(protocol, "alice", "bob")
        transcripts[protocol] = run_protocol(party_a, party_b)
    result = SweepResult()
    for mult_ms in sweep_ms:
        device = _scaled_device(STM32F767, mult_ms)
        result.points.append(
            SweepPoint(
                scalar_mult_ms=mult_ms,
                s_ecdsa_ms=protocol_total_ms(transcripts["s-ecdsa"], device),
                sts_ms=protocol_total_ms(transcripts["sts"], device),
                sts_opt2_ms=protocol_total_ms(
                    transcripts["sts"], device, schedule="opt2"
                ),
            )
        )
    return result
