"""Experiment ``tab3``: Table III — the security property matrix."""

from __future__ import annotations

from dataclasses import dataclass

from ..security.analysis import SecurityMatrix, evaluate_security_matrix
from ..testbed import TestBed


@dataclass
class Table3Result:
    """The evaluated matrix plus the paper comparison."""

    matrix: SecurityMatrix

    def matches_paper(self) -> bool:
        """True if every rating equals the paper's Table III."""
        return self.matrix.matches_paper()

    def render(self) -> str:
        """The matrix plus any disagreements."""
        lines = [self.matrix.render(), ""]
        mismatches = self.matrix.mismatches()
        if mismatches:
            lines.append("disagreements with the paper:")
            for protocol, prop, ours, theirs in mismatches:
                lines.append(
                    f"  {protocol}/{prop}: ours {ours.value},"
                    f" paper {theirs.value}"
                )
        else:
            lines.append("all 20 cells match the paper's Table III")
        return "\n".join(lines)


def run_table3(testbed: TestBed | None = None) -> Table3Result:
    """Reproduce Table III by executing the attack suite."""
    return Table3Result(matrix=evaluate_security_matrix(testbed))
