"""Experiment ``energy``: per-session energy estimates (PPK2 substitute).

The paper's measurements were taken "using system ticks and Nordic PPK2"
— i.e. the authors also recorded power, though Table I reports only time.
This derived experiment reconstructs the energy side: active power ×
modelled execution time per station, for every protocol and device.  It
is the quantity a battery-powered node (the paper's BMS domain!) actually
budgets.

Key derived observation: on the battery-relevant low-end/mid-tier
devices, one STS session costs on the order of single-digit joules —
milli-percent of a traction battery but significant for a coin-cell
sensor, which is why the SCIANC/PORAMB trade-off exists at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.devices import DEVICES, TABLE_DEVICE_ORDER
from ..hardware.energy import EnergyEstimate, estimate_energy
from ..protocols import TABLE_ORDER, run_protocol
from ..testbed import TestBed, make_testbed


@dataclass
class EnergyResult:
    """Energy estimates for every (protocol, device) combination.

    Note: the STS opt. I/II rows equal plain STS — the schedules overlap
    computation to cut *latency*, but the amount of work (and therefore
    energy) is unchanged.  That energy-vs-latency distinction is itself a
    finding this experiment surfaces.
    """

    estimates: dict[tuple[str, str], EnergyEstimate] = field(
        default_factory=dict
    )

    def total_mj(self, protocol: str, device: str) -> float:
        """Pair energy of one combination (millijoules)."""
        return self.estimates[(protocol, device)].total_mj

    def sts_premium_mj(self, device: str) -> float:
        """Extra energy STS costs over S-ECDSA on one device."""
        return self.total_mj("sts", device) - self.total_mj("s-ecdsa", device)

    def orderings_match_time(self) -> bool:
        """Energy ordering must equal the time ordering per device
        (energy = power × time with one power rating per device)."""
        for device in TABLE_DEVICE_ORDER:
            by_energy = sorted(
                TABLE_ORDER, key=lambda p: self.total_mj(p, device)
            )
            by_time = sorted(
                TABLE_ORDER,
                key=lambda p: self.estimates[(p, device)].total_ms,
            )
            if by_energy != by_time:
                return False
        return True

    def render(self) -> str:
        """ASCII table: pair energy in millijoules."""
        lines = [
            "Per-session pair energy (mJ), active power x modelled time",
            f"{'Protocol':14s}"
            + "".join(
                f"{DEVICES[d].label:>16s}" for d in TABLE_DEVICE_ORDER
            ),
        ]
        for protocol in TABLE_ORDER:
            row = f"{protocol:14s}"
            for device in TABLE_DEVICE_ORDER:
                row += f"{self.total_mj(protocol, device):16.1f}"
            lines.append(row)
        lines.append(
            "STS premium over S-ECDSA (mJ): "
            + ", ".join(
                f"{DEVICES[d].label}={self.sts_premium_mj(d):.1f}"
                for d in TABLE_DEVICE_ORDER
            )
        )
        return "\n".join(lines)


def run_energy(testbed: TestBed | None = None) -> EnergyResult:
    """Estimate session energy for every protocol × device."""
    if testbed is None:
        testbed = make_testbed(seed=b"repro-energy")
    result = EnergyResult()
    for protocol in TABLE_ORDER:
        party_a, party_b = testbed.party_pair(protocol, "alice", "bob")
        transcript = run_protocol(party_a, party_b)
        for device_name in TABLE_DEVICE_ORDER:
            device = DEVICES[device_name]
            result.estimates[(protocol, device_name)] = estimate_energy(
                transcript, device
            )
    return result
