"""Experiment ``fig7``: the BMS↔EVCC prototype timeline (paper §V-C).

Two S32K144 ECUs establish a session over CAN-FD (nominal 0.5 Mbit/s,
data 2 Mbit/s) with ISO-TP fragmentation — once with STS, once with the
conventional S-ECDSA.  The paper reports 3.257 s vs 2.677 s (+21.67 %)
and a negligible (<1 ms) physical transfer share; this experiment
reconstructs the full timeline and those three headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.devices import DeviceModel, S32K144
from ..network.canfd import CanFdBus, CanFdBusConfig
from ..network.cantp import IsoTpChannel
from ..network.stack import NetworkStack
from ..protocols import run_protocol
from ..sim.timeline import SessionTimeline, simulate_session_timeline
from ..testbed import TestBed, make_testbed

#: Paper §V-C headline numbers.
PAPER_STS_TOTAL_S = 3.257
PAPER_S_ECDSA_TOTAL_S = 2.677
PAPER_OVERHEAD_PERCENT = 21.67


@dataclass
class Fig7Result:
    """Both prototype timelines plus the derived comparisons."""

    sts_timeline: SessionTimeline
    s_ecdsa_timeline: SessionTimeline

    @property
    def sts_total_s(self) -> float:
        """Modelled STS session establishment total (seconds)."""
        return self.sts_timeline.total_ms / 1000.0

    @property
    def s_ecdsa_total_s(self) -> float:
        """Modelled S-ECDSA session establishment total (seconds)."""
        return self.s_ecdsa_timeline.total_ms / 1000.0

    @property
    def overhead_percent(self) -> float:
        """STS increase over S-ECDSA (the paper's 21.67 %)."""
        return 100.0 * (self.sts_total_s / self.s_ecdsa_total_s - 1.0)

    @property
    def max_transfer_ms(self) -> float:
        """Largest single-message bus time (paper: <1 ms)."""
        return max(
            s.duration_ms
            for timeline in (self.sts_timeline, self.s_ecdsa_timeline)
            for s in timeline.segments
            if s.kind == "transfer"
        )

    def render(self) -> str:
        """Both timelines plus the headline comparison."""
        lines = [
            self.sts_timeline.render(),
            "",
            self.s_ecdsa_timeline.render(),
            "",
            f"STS total:      {self.sts_total_s:.3f} s"
            f"  (paper {PAPER_STS_TOTAL_S} s)",
            f"S-ECDSA total:  {self.s_ecdsa_total_s:.3f} s"
            f"  (paper {PAPER_S_ECDSA_TOTAL_S} s)",
            f"STS overhead:   {self.overhead_percent:+.2f} %"
            f"  (paper +{PAPER_OVERHEAD_PERCENT} %)",
            f"max single-message bus time: {self.max_transfer_ms:.3f} ms"
            f"  (paper: physical transfer < 1 ms)",
        ]
        return "\n".join(lines)


def prototype_stack() -> NetworkStack:
    """The paper's CAN-FD configuration: 0.5 Mbit/s nominal, 2 Mbit/s data."""
    bus = CanFdBus(
        CanFdBusConfig(nominal_bitrate=500_000, data_bitrate=2_000_000)
    )
    return NetworkStack(bus=bus, channel=IsoTpChannel(bus=bus))


def run_fig7(
    testbed: TestBed | None = None, device: DeviceModel = S32K144
) -> Fig7Result:
    """Reproduce the Fig. 7 prototype timelines."""
    if testbed is None:
        testbed = make_testbed(("bms", "evcc"), seed=b"repro-fig7")
    timelines = {}
    for protocol in ("sts", "s-ecdsa"):
        party_a, party_b = testbed.party_pair(protocol, "bms", "evcc")
        transcript = run_protocol(party_a, party_b)
        timelines[protocol] = simulate_session_timeline(
            transcript,
            device,
            stack=prototype_stack(),
            device_names=("BMS", "EVCC"),
        )
    return Fig7Result(
        sts_timeline=timelines["sts"],
        s_ecdsa_timeline=timelines["s-ecdsa"],
    )
