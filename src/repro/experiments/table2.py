"""Experiment ``tab2``: Table II — communication steps and bytes."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.overhead import (
    PAPER_TABLE2,
    ProtocolOverhead,
    overhead_table,
    render_overhead_table,
)
from ..testbed import TestBed


@dataclass
class Table2Result:
    """Measured overhead per protocol plus the paper comparison."""

    rows: dict[str, ProtocolOverhead] = field(default_factory=dict)

    def all_match_paper(self) -> bool:
        """True if every row equals the paper's published steps/bytes."""
        return all(row.matches_paper() for row in self.rows.values())

    def render(self) -> str:
        """ASCII rendering with per-message layouts."""
        return render_overhead_table(self.rows)


def run_table2(testbed: TestBed | None = None) -> Table2Result:
    """Reproduce Table II from actually serialized messages."""
    return Table2Result(rows=overhead_table(testbed, tuple(PAPER_TABLE2)))
