"""Command-line entry point: ``python -m repro.experiments``.

Runs every table/figure reproduction and prints the reports in paper
order.  Pass experiment ids (e.g. ``tab1 fig7``) to run a subset.
"""

from __future__ import annotations

import sys

from . import run_all, run_energy, run_fig3, run_fig4, run_fig7, run_fig8
from . import run_sweep, run_table1, run_table2, run_table3

_RUNNERS = {
    "fig3": lambda: run_fig3().render(),
    "fig4": lambda: run_fig4().render(),
    "tab1": lambda: run_table1().render(),
    "tab2": lambda: run_table2().render(),
    "fig7": lambda: run_fig7().render(),
    "tab3": lambda: run_table3().render(),
    "fig8": lambda: run_fig8().render(),
    "energy": lambda: run_energy().render(),
    "sweep": lambda: run_sweep().render(),
}


def main(argv: list[str]) -> int:
    """Run requested experiments (all when none are named)."""
    requested = argv or list(_RUNNERS)
    unknown = [x for x in requested if x not in _RUNNERS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {sorted(_RUNNERS)}")
        return 2
    if set(requested) == set(_RUNNERS):
        reports = run_all()
    else:
        reports = {x: _RUNNERS[x]() for x in requested}
    for exp_id in requested:
        print(f"{'=' * 72}\nExperiment {exp_id}\n{'=' * 72}")
        print(reports[exp_id])
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
