"""Experiment ``fig4``: Fig. 4 — total KD processing time comparison.

Fig. 4 is the STM32F767 column of Table I drawn as a bar chart.  We
reproduce the series and assert its qualitative ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.calibrate import PAPER_TABLE1
from ..protocols import TABLE_ORDER
from ..testbed import TestBed
from .table1 import Table1Result, run_table1


@dataclass
class Fig4Result:
    """Protocol → total ms on the STM32F767, with paper references."""

    device_name: str
    modelled_ms: dict[str, float] = field(default_factory=dict)
    paper_ms: dict[str, float] = field(default_factory=dict)

    def ordering(self) -> list[str]:
        """Protocols sorted fastest → slowest (modelled)."""
        return sorted(self.modelled_ms, key=self.modelled_ms.get)

    def paper_ordering(self) -> list[str]:
        """Protocols sorted fastest → slowest (paper)."""
        return sorted(self.paper_ms, key=self.paper_ms.get)

    def orderings_agree(self) -> bool:
        """Does the modelled bar ordering match the paper's?

        Compared *excluding* STS opt. I: our model applies the paper's own
        Eq. 7 ideally, which parks opt. I in a near-tie with S-ECDSA,
        whereas the paper's measurement carries real scheduling overhead
        and lands 12 % above it.  EXPERIMENTS.md discusses this known,
        documented deviation; the remaining six bars must order exactly.
        """
        ours = [p for p in self.ordering() if p != "sts-opt1"]
        theirs = [p for p in self.paper_ordering() if p != "sts-opt1"]
        return ours == theirs

    def render(self) -> str:
        """ASCII bar chart in the paper's Fig. 4 style."""
        lines = [f"Total KD processing time on {self.device_name} (ms)"]
        peak = max(self.modelled_ms.values())
        for name in TABLE_ORDER:
            ms = self.modelled_ms[name]
            bar = "#" * max(1, int(44 * ms / peak))
            lines.append(
                f"  {name:12s} {ms:9.1f} |{bar}"
                f"   (paper {self.paper_ms[name]:.1f})"
            )
        lines.append(
            f"fastest→slowest: {' < '.join(self.ordering())}"
        )
        lines.append(f"orderings agree with paper: {self.orderings_agree()}")
        return "\n".join(lines)


def run_fig4(
    testbed: TestBed | None = None,
    device_name: str = "stm32f767",
    table1: Table1Result | None = None,
) -> Fig4Result:
    """Reproduce Fig. 4 (reusing a Table I run if provided)."""
    if table1 is None:
        table1 = run_table1(testbed)
    result = Fig4Result(device_name=device_name)
    for protocol in TABLE_ORDER:
        result.modelled_ms[protocol] = table1.cell(
            protocol, device_name
        ).modelled_ms
        result.paper_ms[protocol] = PAPER_TABLE1[protocol][device_name]
    return result
