"""Experiment ``fig3``: Fig. 3 — per-operation STS times on the STM32F767.

The paper decomposes one STS run into Op1–Op4 (§IV-C) and plots their
individual durations on the STM32F767.  We reproduce the series from the
traced operations of a real STS run priced on the calibrated STM32F767
model, reporting initiator and responder separately (their Op2 splits
differ in *when* the work happens, not in total).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.devices import DeviceModel, STM32F767
from ..protocols import run_protocol
from ..sim.schedule import op_times_for
from ..testbed import TestBed, make_testbed

#: Human titles of the four operations (paper §IV-C).
OP_TITLES = {
    "op1": "Op1: request phase - random XG derivation",
    "op2": "Op2: public key + premaster generation",
    "op3": "Op3: auth. signature derivation + encryption",
    "op4": "Op4: auth. signature decryption + verification",
}


@dataclass
class Fig3Result:
    """Per-operation times for both stations."""

    device_label: str
    initiator_ms: dict[str, float] = field(default_factory=dict)
    responder_ms: dict[str, float] = field(default_factory=dict)

    def mean_ms(self, op: str) -> float:
        """Mean of the two stations for one operation class."""
        return (self.initiator_ms[op] + self.responder_ms[op]) / 2.0

    def ordering_holds(self) -> bool:
        """Fig. 3's qualitative shape: Op2 is the most expensive class,
        Op4 beats Op1/Op3 (verification costs more than one mult)."""
        means = {op: self.mean_ms(op) for op in OP_TITLES}
        return (
            means["op2"] > means["op4"] > means["op1"]
            and means["op2"] > means["op3"]
        )

    def render(self) -> str:
        """ASCII bar chart of the operation times."""
        lines = [f"STS per-operation times on {self.device_label} (ms)"]
        peak = max(self.mean_ms(op) for op in OP_TITLES)
        for op, title in OP_TITLES.items():
            mean = self.mean_ms(op)
            bar = "#" * max(1, int(40 * mean / peak))
            lines.append(
                f"  {op}: {mean:8.2f} ms  |{bar}\n"
                f"       ({title};"
                f" A={self.initiator_ms[op]:.2f}, B={self.responder_ms[op]:.2f})"
            )
        lines.append(f"ordering holds (Op2 > Op4 > Op1, Op2 > Op3): {self.ordering_holds()}")
        return "\n".join(lines)


def run_fig3(
    testbed: TestBed | None = None, device: DeviceModel = STM32F767
) -> Fig3Result:
    """Reproduce Fig. 3."""
    if testbed is None:
        testbed = make_testbed(seed=b"repro-fig3")
    party_a, party_b = testbed.party_pair("sts", "alice", "bob")
    run_protocol(party_a, party_b)
    a = op_times_for(party_a, device)
    b = op_times_for(party_b, device)
    return Fig3Result(
        device_label=device.label,
        initiator_ms={"op1": a.op1, "op2": a.op2, "op3": a.op3, "op4": a.op4},
        responder_ms={"op1": b.op1, "op2": b.op2, "op3": b.op3, "op4": b.op4},
    )
