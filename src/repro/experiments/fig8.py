"""Experiment ``fig8``: the STS-ECQV threat-model block diagram."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..security.threatmodel import (
    build_threat_model,
    coverage_summary,
    render_threat_model,
    uncovered_threats,
)


@dataclass
class Fig8Result:
    """The threat-model graph plus derived checks."""

    graph: nx.DiGraph

    @property
    def fully_covered(self) -> bool:
        """Every threat has at least one mitigation (possibly partial)."""
        return not uncovered_threats(self.graph)

    @property
    def coverage(self) -> dict[str, list[str]]:
        """Threat → mitigating countermeasures."""
        return coverage_summary(self.graph)

    def render(self) -> str:
        """ASCII block diagram."""
        return render_threat_model(self.graph)


def run_fig8() -> Fig8Result:
    """Reproduce Fig. 8."""
    return Fig8Result(graph=build_threat_model())
