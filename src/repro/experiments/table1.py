"""Experiment ``tab1``: Table I — KD execution time across devices.

Runs every protocol variant once (real cryptography), prices the traced
operations on each of the four calibrated device models, applies the
Opt. I/II schedules where the variant asks for them, and compares against
the paper's published cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.calibrate import PAPER_TABLE1
from ..hardware.devices import DEVICES, TABLE_DEVICE_ORDER
from ..protocols import TABLE_ORDER, run_protocol
from ..sim.schedule import protocol_total_ms
from ..testbed import TestBed, make_testbed


@dataclass(frozen=True)
class Table1Cell:
    """One (protocol, device) cell: modelled vs paper milliseconds."""

    protocol_name: str
    device_name: str
    modelled_ms: float
    paper_ms: float

    @property
    def delta(self) -> float:
        """Relative deviation (modelled / paper − 1)."""
        return self.modelled_ms / self.paper_ms - 1.0


@dataclass
class Table1Result:
    """The full reproduced Table I."""

    cells: dict[tuple[str, str], Table1Cell] = field(default_factory=dict)

    def cell(self, protocol: str, device: str) -> Table1Cell:
        """Look up one cell."""
        return self.cells[(protocol, device)]

    def max_abs_delta(self) -> float:
        """Largest relative deviation across all cells."""
        return max(abs(c.delta) for c in self.cells.values())

    def sts_overhead_vs_s_ecdsa(self, device: str = "stm32f767") -> float:
        """The headline number: STS cost increase over S-ECDSA."""
        sts = self.cell("sts", device).modelled_ms
        base = self.cell("s-ecdsa", device).modelled_ms
        return sts / base - 1.0

    def orderings_hold(self) -> bool:
        """Check the qualitative shape on every device.

        SCIANC < PORAMB < S-ECDSA < STS, and STS opt. II < S-ECDSA < STS
        (the paper's crossover claims).
        """
        for device in TABLE_DEVICE_ORDER:
            t = {p: self.cell(p, device).modelled_ms for p in TABLE_ORDER}
            if not (
                t["scianc"] < t["poramb"] < t["s-ecdsa"] < t["sts"]
                and t["sts-opt2"] < t["s-ecdsa"]
                and t["sts-opt2"] < t["sts-opt1"] < t["sts"]
            ):
                return False
        return True

    def render(self) -> str:
        """ASCII table in the paper's layout, with deltas."""
        lines = [
            f"{'Protocol / Device':16s}"
            + "".join(f"{DEVICES[d].label:>24s}" for d in TABLE_DEVICE_ORDER)
        ]
        for protocol in TABLE_ORDER:
            row = f"{protocol:16s}"
            for device in TABLE_DEVICE_ORDER:
                c = self.cell(protocol, device)
                row += f"{c.modelled_ms:12.2f} ({c.delta:+6.1%})"
            lines.append(row)
        lines.append(
            f"\nSTS overhead vs S-ECDSA on STM32F767:"
            f" {self.sts_overhead_vs_s_ecdsa():+.1%} (paper: ≈ +25 % in"
            f" Table I, +21.67 % in the prototype)"
        )
        lines.append(f"orderings hold on all devices: {self.orderings_hold()}")
        return "\n".join(lines)


def run_table1(testbed: TestBed | None = None) -> Table1Result:
    """Reproduce Table I."""
    if testbed is None:
        testbed = make_testbed(seed=b"repro-table1")
    result = Table1Result()
    for protocol in TABLE_ORDER:
        party_a, party_b = testbed.party_pair(protocol, "alice", "bob")
        transcript = run_protocol(party_a, party_b)
        for device_name in TABLE_DEVICE_ORDER:
            device = DEVICES[device_name]
            modelled = protocol_total_ms(transcript, device)
            result.cells[(protocol, device_name)] = Table1Cell(
                protocol_name=protocol,
                device_name=device_name,
                modelled_ms=modelled,
                paper_ms=PAPER_TABLE1[protocol][device_name],
            )
    return result
