"""SHA-2 family implemented from scratch (FIPS 180-4).

Provides SHA-224/256 (32-bit schedule, 64-byte blocks) and SHA-384/512
(64-bit schedule, 128-byte blocks) with the familiar
``update()/digest()/hexdigest()`` interface plus one-shot helpers.

Every compression-function invocation records one ``sha2.block`` trace
event — hashing cost on embedded devices is linear in compressed blocks,
which is exactly what the hardware model prices.

The classes in this module are the **reference** implementation; the
module-level entry points (:func:`new_hash` and the one-shot helpers)
dispatch through the active :mod:`repro.backend`, so an accelerated
backend can swap in ``hashlib`` while emitting the identical trace
stream.  Instantiating a class directly always yields the from-scratch
implementation.
"""

from __future__ import annotations

import struct

from .. import trace
from ..backend import get_backend
from ..errors import CryptoError

_K256 = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_K512 = (
    0x428A2F98D728AE22, 0x7137449123EF65CD, 0xB5C0FBCFEC4D3B2F,
    0xE9B5DBA58189DBBC, 0x3956C25BF348B538, 0x59F111F1B605D019,
    0x923F82A4AF194F9B, 0xAB1C5ED5DA6D8118, 0xD807AA98A3030242,
    0x12835B0145706FBE, 0x243185BE4EE4B28C, 0x550C7DC3D5FFB4E2,
    0x72BE5D74F27B896F, 0x80DEB1FE3B1696B1, 0x9BDC06A725C71235,
    0xC19BF174CF692694, 0xE49B69C19EF14AD2, 0xEFBE4786384F25E3,
    0x0FC19DC68B8CD5B5, 0x240CA1CC77AC9C65, 0x2DE92C6F592B0275,
    0x4A7484AA6EA6E483, 0x5CB0A9DCBD41FBD4, 0x76F988DA831153B5,
    0x983E5152EE66DFAB, 0xA831C66D2DB43210, 0xB00327C898FB213F,
    0xBF597FC7BEEF0EE4, 0xC6E00BF33DA88FC2, 0xD5A79147930AA725,
    0x06CA6351E003826F, 0x142929670A0E6E70, 0x27B70A8546D22FFC,
    0x2E1B21385C26C926, 0x4D2C6DFC5AC42AED, 0x53380D139D95B3DF,
    0x650A73548BAF63DE, 0x766A0ABB3C77B2A8, 0x81C2C92E47EDAEE6,
    0x92722C851482353B, 0xA2BFE8A14CF10364, 0xA81A664BBC423001,
    0xC24B8B70D0F89791, 0xC76C51A30654BE30, 0xD192E819D6EF5218,
    0xD69906245565A910, 0xF40E35855771202A, 0x106AA07032BBD1B8,
    0x19A4C116B8D2D0C8, 0x1E376C085141AB53, 0x2748774CDF8EEB99,
    0x34B0BCB5E19B48A8, 0x391C0CB3C5C95A63, 0x4ED8AA4AE3418ACB,
    0x5B9CCA4F7763E373, 0x682E6FF3D6B2B8A3, 0x748F82EE5DEFB2FC,
    0x78A5636F43172F60, 0x84C87814A1F0AB72, 0x8CC702081A6439EC,
    0x90BEFFFA23631E28, 0xA4506CEBDE82BDE9, 0xBEF9A3F7B2C67915,
    0xC67178F2E372532B, 0xCA273ECEEA26619C, 0xD186B8C721C0C207,
    0xEADA7DD6CDE0EB1E, 0xF57D4F7FEE6ED178, 0x06F067AA72176FBA,
    0x0A637DC5A2C898A6, 0x113F9804BEF90DAE, 0x1B710B35131C471B,
    0x28DB77F523047D84, 0x32CAAB7B40C72493, 0x3C9EBE0A15C9BEBC,
    0x431D67C49C100D4C, 0x4CC5D4BECB3E42B6, 0x597F299CFC657E2A,
    0x5FCB6FAB3AD6FAEC, 0x6C44198C4A475817,
)

_IV224 = (
    0xC1059ED8, 0x367CD507, 0x3070DD17, 0xF70E5939,
    0xFFC00B31, 0x68581511, 0x64F98FA7, 0xBEFA4FA4,
)
_IV256 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)
_IV384 = (
    0xCBBB9D5DC1059ED8, 0x629A292A367CD507, 0x9159015A3070DD17,
    0x152FECD8F70E5939, 0x67332667FFC00B31, 0x8EB44A8768581511,
    0xDB0C2E0D64F98FA7, 0x47B5481DBEFA4FA4,
)
_IV512 = (
    0x6A09E667F3BCC908, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B,
    0xA54FF53A5F1D36F1, 0x510E527FADE682D1, 0x9B05688C2B3E6C1F,
    0x1F83D9ABFB41BD6B, 0x5BE0CD19137E2179,
)

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _rotr32(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK32


def _rotr64(x: int, n: int) -> int:
    return ((x >> n) | (x << (64 - n))) & _MASK64


class _Sha2Base:
    """Shared streaming machinery for the four digest variants."""

    block_size: int
    digest_size: int
    name: str

    def __init__(self, data: bytes = b"") -> None:
        self._state = list(self._iv())
        self._buffer = b""
        self._length = 0  # total message bytes
        if data:
            self.update(data)

    def _iv(self) -> tuple[int, ...]:
        raise NotImplementedError

    def _compress(self, block: bytes) -> None:
        raise NotImplementedError

    def update(self, data: bytes) -> "_Sha2Base":
        """Absorb more message bytes; returns self for chaining."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise CryptoError("hash input must be bytes-like")
        data = bytes(data)
        self._length += len(data)
        buf = self._buffer + data
        bs = self.block_size
        offset = 0
        while len(buf) - offset >= bs:
            self._compress(buf[offset : offset + bs])
            offset += bs
        self._buffer = buf[offset:]
        return self

    def copy(self) -> "_Sha2Base":
        """Independent copy of the running hash state."""
        dup = type(self)()
        dup._state = list(self._state)
        dup._buffer = self._buffer
        dup._length = self._length
        return dup

    def digest(self) -> bytes:
        """Finalize (on a copy) and return the digest bytes."""
        clone = self.copy()
        bs = self.block_size
        length_field = 8 if bs == 64 else 16
        bit_len = clone._length * 8
        pad_len = (bs - 1 - length_field - clone._length) % bs
        clone._absorb_final(
            b"\x80" + b"\x00" * pad_len + bit_len.to_bytes(length_field, "big")
        )
        word_fmt = ">%dI" % len(clone._state) if bs == 64 else ">%dQ" % len(clone._state)
        full = struct.pack(word_fmt, *clone._state)
        return full[: self.digest_size]

    def _absorb_final(self, padding: bytes) -> None:
        buf = self._buffer + padding
        bs = self.block_size
        for off in range(0, len(buf), bs):
            self._compress(buf[off : off + bs])
        self._buffer = b""

    def hexdigest(self) -> str:
        """Digest as a lowercase hex string."""
        return self.digest().hex()


class _Sha256Core(_Sha2Base):
    block_size = 64

    def _compress(self, block: bytes) -> None:
        trace.record("sha2.block")
        w = list(struct.unpack(">16I", block))
        for i in range(16, 64):
            s0 = _rotr32(w[i - 15], 7) ^ _rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3)
            s1 = _rotr32(w[i - 2], 17) ^ _rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10)
            w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK32)
        a, b, c, d, e, f, g, h = self._state
        for i in range(64):
            s1 = _rotr32(e, 6) ^ _rotr32(e, 11) ^ _rotr32(e, 25)
            ch = (e & f) ^ (~e & g)
            t1 = (h + s1 + ch + _K256[i] + w[i]) & _MASK32
            s0 = _rotr32(a, 2) ^ _rotr32(a, 13) ^ _rotr32(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            t2 = (s0 + maj) & _MASK32
            h, g, f, e, d, c, b, a = (
                g, f, e, (d + t1) & _MASK32, c, b, a, (t1 + t2) & _MASK32,
            )
        st = self._state
        st[0] = (st[0] + a) & _MASK32
        st[1] = (st[1] + b) & _MASK32
        st[2] = (st[2] + c) & _MASK32
        st[3] = (st[3] + d) & _MASK32
        st[4] = (st[4] + e) & _MASK32
        st[5] = (st[5] + f) & _MASK32
        st[6] = (st[6] + g) & _MASK32
        st[7] = (st[7] + h) & _MASK32


class _Sha512Core(_Sha2Base):
    block_size = 128

    def _compress(self, block: bytes) -> None:
        trace.record("sha2.block")
        w = list(struct.unpack(">16Q", block))
        for i in range(16, 80):
            s0 = _rotr64(w[i - 15], 1) ^ _rotr64(w[i - 15], 8) ^ (w[i - 15] >> 7)
            s1 = _rotr64(w[i - 2], 19) ^ _rotr64(w[i - 2], 61) ^ (w[i - 2] >> 6)
            w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK64)
        a, b, c, d, e, f, g, h = self._state
        for i in range(80):
            s1 = _rotr64(e, 14) ^ _rotr64(e, 18) ^ _rotr64(e, 41)
            ch = (e & f) ^ (~e & g)
            t1 = (h + s1 + ch + _K512[i] + w[i]) & _MASK64
            s0 = _rotr64(a, 28) ^ _rotr64(a, 34) ^ _rotr64(a, 39)
            maj = (a & b) ^ (a & c) ^ (b & c)
            t2 = (s0 + maj) & _MASK64
            h, g, f, e, d, c, b, a = (
                g, f, e, (d + t1) & _MASK64, c, b, a, (t1 + t2) & _MASK64,
            )
        st = self._state
        for idx, val in enumerate((a, b, c, d, e, f, g, h)):
            st[idx] = (st[idx] + val) & _MASK64


class Sha224(_Sha256Core):
    """SHA-224 streaming hash."""

    digest_size = 28
    name = "sha224"

    def _iv(self) -> tuple[int, ...]:
        return _IV224


class Sha256(_Sha256Core):
    """SHA-256 streaming hash."""

    digest_size = 32
    name = "sha256"

    def _iv(self) -> tuple[int, ...]:
        return _IV256


class Sha384(_Sha512Core):
    """SHA-384 streaming hash."""

    digest_size = 48
    name = "sha384"

    def _iv(self) -> tuple[int, ...]:
        return _IV384


class Sha512(_Sha512Core):
    """SHA-512 streaming hash."""

    digest_size = 64
    name = "sha512"

    def _iv(self) -> tuple[int, ...]:
        return _IV512


#: The reference implementation registry (name -> from-scratch class).
#: The reference backend instantiates these; backend-neutral metadata
#: (block/digest sizes) lives in :data:`repro.backend.HASH_INFO`.
HASHES: dict[str, type[_Sha2Base]] = {
    "sha224": Sha224,
    "sha256": Sha256,
    "sha384": Sha384,
    "sha512": Sha512,
}


def new_hash(name: str, data: bytes = b""):
    """Instantiate a hash by name (``sha224/256/384/512``).

    Dispatches through the active :mod:`repro.backend`; the returned
    object offers the streaming ``update()/digest()/hexdigest()/copy()``
    surface regardless of backend.
    """
    return get_backend().create_hash(name, data)


def sha224(data: bytes) -> bytes:
    """One-shot SHA-224 (dispatches through the active backend)."""
    return get_backend().hash_digest("sha224", data)


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256 (dispatches through the active backend)."""
    return get_backend().hash_digest("sha256", data)


def sha384(data: bytes) -> bytes:
    """One-shot SHA-384 (dispatches through the active backend)."""
    return get_backend().hash_digest("sha384", data)


def sha512(data: bytes) -> bytes:
    """One-shot SHA-512 (dispatches through the active backend)."""
    return get_backend().hash_digest("sha512", data)
