"""Symmetric/hash primitive layer, implemented from scratch.

Contents: SHA-2 family, HMAC, HKDF + ANSI X9.63 KDF, AES-128/192/256 with
ECB/CBC/CTR modes and PKCS#7 padding, AES-CMAC, HMAC-DRBG and RFC 6979
deterministic nonces.  All primitives record cost-trace events so protocol
runs can be priced by the hardware models.

Every entry point dispatches through the pluggable :mod:`repro.backend`:
the default ``reference`` backend runs the from-scratch classes defined
here, while the ``accelerated`` backend swaps in ``hashlib``/``hmac``
and (optionally) OpenSSL AES with bit-identical outputs *and*
bit-identical trace streams — see ``docs/ARCHITECTURE.md`` for the
parity contract.
"""

from .aes import BLOCK_SIZE, Aes
from .cmac import cmac, cmac_verify
from .drbg import HmacDrbg, rfc6979_nonce
from .hmac import Hmac, hmac, hmac_verify
from .kdf import hkdf, hkdf_expand, hkdf_extract, x963_kdf
from .modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_crypt,
    ctr_keystream,
    ecb_decrypt,
    ecb_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from .sha2 import (
    HASHES,
    Sha224,
    Sha256,
    Sha384,
    Sha512,
    new_hash,
    sha224,
    sha256,
    sha384,
    sha512,
)

__all__ = [
    "Aes",
    "BLOCK_SIZE",
    "HASHES",
    "Hmac",
    "HmacDrbg",
    "Sha224",
    "Sha256",
    "Sha384",
    "Sha512",
    "cbc_decrypt",
    "cbc_encrypt",
    "cmac",
    "cmac_verify",
    "ctr_crypt",
    "ctr_keystream",
    "ecb_decrypt",
    "ecb_encrypt",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "hmac",
    "hmac_verify",
    "new_hash",
    "pkcs7_pad",
    "pkcs7_unpad",
    "rfc6979_nonce",
    "sha224",
    "sha256",
    "sha384",
    "sha512",
    "x963_kdf",
]
