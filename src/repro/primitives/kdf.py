"""Key-derivation functions: HKDF (RFC 5869) and ANSI X9.63 KDF.

The STS design derives the session key as ``K_S = KDF(K_PM, salt)``
(paper Eq. 4).  We provide both the modern HKDF construction and the
X9.63 KDF that SEC 4 (ECQV) prescribes for deriving keys from elliptic-
curve shared secrets, so either can be plugged into the protocols.
"""

from __future__ import annotations

from .. import trace
from ..backend import HASH_INFO
from ..errors import CryptoError
from ..utils import int_to_bytes
from .hmac import hmac
from .sha2 import new_hash


def hkdf_extract(salt: bytes, ikm: bytes, hash_name: str = "sha256") -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * HASH_INFO[hash_name].digest_size
    return hmac(salt, ikm, hash_name)


def hkdf_expand(
    prk: bytes, info: bytes, length: int, hash_name: str = "sha256"
) -> bytes:
    """HKDF-Expand: grow PRK into ``length`` output bytes."""
    digest_size = HASH_INFO[hash_name].digest_size
    if length <= 0:
        raise CryptoError(f"output length must be positive, got {length}")
    if length > 255 * digest_size:
        raise CryptoError(
            f"HKDF output too long: {length} > {255 * digest_size}"
        )
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac(prk, block + info + bytes([counter]), hash_name)
        okm += block
        counter += 1
    return okm[:length]


def hkdf(
    ikm: bytes,
    salt: bytes = b"",
    info: bytes = b"",
    length: int = 32,
    hash_name: str = "sha256",
) -> bytes:
    """Full HKDF (extract-then-expand)."""
    trace.record("kdf.call")
    prk = hkdf_extract(salt, ikm, hash_name)
    return hkdf_expand(prk, info, length, hash_name)


def x963_kdf(
    shared_secret: bytes,
    shared_info: bytes = b"",
    length: int = 32,
    hash_name: str = "sha256",
) -> bytes:
    """ANSI X9.63 KDF: ``Hash(Z || counter || SharedInfo)`` blocks.

    This is the KDF SEC 1/SEC 4 specify for ECIES/ECQV key derivation and
    the construction most embedded ECQV stacks (including the paper's C
    reference) ship.
    """
    digest_size = HASH_INFO[hash_name].digest_size
    if length <= 0:
        raise CryptoError(f"output length must be positive, got {length}")
    if length >= digest_size * 0xFFFFFFFF:
        raise CryptoError("X9.63 KDF output too long")
    trace.record("kdf.call")
    out = b""
    counter = 1
    while len(out) < length:
        hasher = new_hash(hash_name, shared_secret)
        hasher.update(int_to_bytes(counter, 4))
        hasher.update(shared_info)
        out += hasher.digest()
        counter += 1
    return out[:length]
