"""AES-CMAC (RFC 4493 / NIST SP 800-38B).

CMAC is the 128-bit MAC option in the paper's evaluation configuration
("128-bits for the AES and CMAC"); automotive stacks (SecOC) favour it
because it reuses the AES hardware block.

The CBC-MAC chain ``X_i = E(X_{i-1} XOR M_i)`` (with ``X_0 = 0``) is
exactly AES-CBC with a zero IV, so the computation delegates to the
active backend cipher's bulk ``encrypt_cbc`` — one C call per message
on the accelerated backend — with the final tag being the last
ciphertext block.  Trace accounting is identical either way: one
``aes.block`` per chained block plus one for subkey derivation.
"""

from __future__ import annotations

from .. import trace
from ..backend import get_backend
from ..errors import CryptoError
from ..utils import constant_time_equal, xor_bytes
from .aes import BLOCK_SIZE

_RB = 0x87  # constant for 128-bit block subkey derivation


def _left_shift_one(block: bytes) -> bytes:
    value = int.from_bytes(block, "big")
    shifted = (value << 1) & ((1 << 128) - 1)
    return shifted.to_bytes(BLOCK_SIZE, "big")


def _subkeys(cipher) -> tuple[bytes, bytes]:
    l = cipher.encrypt_block(b"\x00" * BLOCK_SIZE)
    k1 = _left_shift_one(l)
    if l[0] & 0x80:
        k1 = k1[:-1] + bytes([k1[-1] ^ _RB])
    k2 = _left_shift_one(k1)
    if k1[0] & 0x80:
        k2 = k2[:-1] + bytes([k2[-1] ^ _RB])
    return k1, k2


def cmac(key: bytes, message: bytes, tag_length: int = BLOCK_SIZE) -> bytes:
    """Compute the AES-CMAC tag of ``message``.

    Args:
        key: AES key (16/24/32 bytes).
        message: data to authenticate (may be empty).
        tag_length: truncated tag size, 1..16 bytes.
    """
    if not 1 <= tag_length <= BLOCK_SIZE:
        raise CryptoError(f"CMAC tag length must be 1..16, got {tag_length}")
    trace.record("cmac.call")
    cipher = get_backend().create_cipher(key)
    k1, k2 = _subkeys(cipher)
    n_blocks = max(1, (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE)
    complete = len(message) > 0 and len(message) % BLOCK_SIZE == 0
    last = message[(n_blocks - 1) * BLOCK_SIZE :]
    if complete:
        last_block = xor_bytes(last, k1)
    else:
        padded = last + b"\x80" + b"\x00" * (BLOCK_SIZE - len(last) - 1)
        last_block = xor_bytes(padded, k2)
    # CBC-MAC chain == CBC with zero IV over the masked message; the tag
    # is the final ciphertext block (one bulk call on fast backends).
    chained = message[: (n_blocks - 1) * BLOCK_SIZE] + last_block
    ciphertext = cipher.encrypt_cbc(b"\x00" * BLOCK_SIZE, chained)
    return ciphertext[-BLOCK_SIZE:][:tag_length]


def cmac_verify(
    key: bytes, message: bytes, tag: bytes, tag_length: int | None = None
) -> bool:
    """Verify an AES-CMAC tag in constant time."""
    length = tag_length if tag_length is not None else len(tag)
    return constant_time_equal(cmac(key, message, length), tag)
