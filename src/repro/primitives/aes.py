"""AES-128/192/256 block cipher implemented from scratch (FIPS 197).

Table-driven byte-oriented implementation, the same structure as tiny-AES
(the C library the paper links against).  One ``aes.block`` trace event is
recorded per block encryption/decryption, which is the unit the hardware
cost model prices.

:class:`Aes` is the **reference** cipher of the backend seam
(:mod:`repro.backend`): alongside the single-block primitives it offers
the bulk chaining helpers (``encrypt_ecb``/``encrypt_cbc``/
``ctr_keystream``/...) that :mod:`repro.primitives.modes` and
:mod:`repro.primitives.cmac` consume, so an accelerated cipher can
override them with single C calls while keeping the identical
one-event-per-block trace accounting.
"""

from __future__ import annotations

from .. import trace
from ..errors import CryptoError
from ..utils import chunks, xor_bytes


def _build_sbox() -> tuple[bytes, bytes]:
    """Construct the AES S-box and its inverse from GF(2^8) arithmetic."""
    # Multiplicative inverse table via exp/log over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    inv_sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation.
        s = inv
        result = 0x63
        for _ in range(4):
            s = ((s << 1) | (s >> 7)) & 0xFF
            result ^= s
        # result currently 0x63 ^ rot1 ^ rot2 ^ rot3 ^ rot4; add inv itself
        result ^= inv
        sbox[value] = result
        inv_sbox[result] = value
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8)


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """GF(2^8) multiplication (Russian-peasant)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiply tables for MixColumns / InvMixColumns.
_MUL2 = bytes(_gf_mul(i, 2) for i in range(256))
_MUL3 = bytes(_gf_mul(i, 3) for i in range(256))
_MUL9 = bytes(_gf_mul(i, 9) for i in range(256))
_MUL11 = bytes(_gf_mul(i, 11) for i in range(256))
_MUL13 = bytes(_gf_mul(i, 13) for i in range(256))
_MUL14 = bytes(_gf_mul(i, 14) for i in range(256))

_ROUNDS = {16: 10, 24: 12, 32: 14}

BLOCK_SIZE = 16


class Aes:
    """AES block cipher with a fixed expanded key.

    Only single-block ``encrypt_block``/``decrypt_block`` live here; chaining
    modes are in :mod:`repro.primitives.modes`.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in _ROUNDS:
            raise CryptoError(
                f"AES key must be 16/24/32 bytes, got {len(key)}"
            )
        self.key_size = len(key)
        self.rounds = _ROUNDS[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """FIPS 197 key schedule; returns (rounds+1) 16-byte round keys."""
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(self.rounds + 1):
            rk = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    @staticmethod
    def _add_round_key(state: list[int], rk: list[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # State is column-major: byte (row r, col c) at index 4*c + r.
        for r in range(1, 4):
            row = [state[4 * c + r] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[4 * c + r] = row[c]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for r in range(1, 4):
            row = [state[4 * c + r] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[4 * c + r] = row[c]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i : i + 4]
            state[i] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            state[i + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            state[i + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            state[i + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i : i + 4]
            state[i] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            state[i + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            state[i + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            state[i + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        trace.record("aes.block")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, self.rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        trace.record("aes.block")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for r in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[r])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    # -- bulk chaining helpers (the backend cipher protocol) -----------------
    # These per-block loops define the reference behaviour; an accelerated
    # cipher overrides them with one C call per message while emitting the
    # same one-event-per-block trace accounting.

    def encrypt_ecb(self, data: bytes) -> bytes:
        """ECB over whole blocks (no padding)."""
        if len(data) % BLOCK_SIZE:
            raise CryptoError("ECB requires whole blocks")
        return b"".join(self.encrypt_block(b) for b in chunks(data, BLOCK_SIZE))

    def decrypt_ecb(self, data: bytes) -> bytes:
        """ECB decryption of whole blocks (no padding)."""
        if len(data) % BLOCK_SIZE:
            raise CryptoError("ECB requires whole blocks")
        return b"".join(self.decrypt_block(b) for b in chunks(data, BLOCK_SIZE))

    def encrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        """CBC over pre-padded whole blocks."""
        if len(data) % BLOCK_SIZE:
            raise CryptoError("unpadded CBC requires whole blocks")
        out = []
        prev = iv
        for block in chunks(data, BLOCK_SIZE):
            prev = self.encrypt_block(xor_bytes(block, prev))
            out.append(prev)
        return b"".join(out)

    def decrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        """CBC decryption of whole blocks (no unpadding)."""
        if len(data) % BLOCK_SIZE:
            raise CryptoError("CBC ciphertext must be whole non-empty blocks")
        out = []
        prev = iv
        for block in chunks(data, BLOCK_SIZE):
            out.append(xor_bytes(self.decrypt_block(block), prev))
            prev = block
        return b"".join(out)

    def ctr_keystream(self, nonce: bytes, length: int) -> bytes:
        """AES-CTR keystream (128-bit big-endian counter, wraps mod 2^128)."""
        counter = int.from_bytes(nonce, "big")
        stream = bytearray()
        while len(stream) < length:
            stream += self.encrypt_block(
                (counter % (1 << 128)).to_bytes(BLOCK_SIZE, "big")
            )
            counter += 1
        return bytes(stream[:length])
