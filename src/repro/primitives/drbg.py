"""HMAC-DRBG (NIST SP 800-90A) and RFC 6979 deterministic ECDSA nonces.

Embedded systems rarely have good entropy sources — the paper's
introduction cites Hughes & Diffie on exactly this problem — so production
stacks seed a deterministic bit generator once and use RFC 6979 for
signature nonces.  We do the same, which also makes every experiment in
this reproduction bit-for-bit replayable.

Both constructions are pure HMAC chains, so they inherit whatever
:mod:`repro.backend` is active through :func:`repro.primitives.hmac`;
their output byte streams are backend-independent by the parity
contract, keeping every seeded experiment replayable under acceleration.
"""

from __future__ import annotations

from .. import trace
from ..backend import HASH_INFO
from ..errors import CryptoError
from ..utils import bytes_to_int, int_to_bytes
from .hmac import hmac


class HmacDrbg:
    """Deterministic random bit generator built on HMAC (SP 800-90A §10.1.2).

    Not reseeded automatically; callers needing prediction resistance can
    call :meth:`reseed`.  ``reseed_interval`` is enforced per the standard.
    """

    RESEED_INTERVAL = 1 << 48

    def __init__(
        self,
        seed: bytes,
        personalization: bytes = b"",
        hash_name: str = "sha256",
    ) -> None:
        if hash_name not in HASH_INFO:
            raise CryptoError(f"unknown hash {hash_name!r}")
        if not seed:
            raise CryptoError("DRBG seed must be non-empty")
        self.hash_name = hash_name
        self._outlen = HASH_INFO[hash_name].digest_size
        self._key = b"\x00" * self._outlen
        self._value = b"\x01" * self._outlen
        self._update(seed + personalization)
        self._reseed_counter = 1

    def _update(self, provided_data: bytes = b"") -> None:
        self._key = hmac(
            self._key, self._value + b"\x00" + provided_data, self.hash_name
        )
        self._value = hmac(self._key, self._value, self.hash_name)
        if provided_data:
            self._key = hmac(
                self._key, self._value + b"\x01" + provided_data, self.hash_name
            )
            self._value = hmac(self._key, self._value, self.hash_name)

    def reseed(self, entropy: bytes, additional: bytes = b"") -> None:
        """Mix fresh entropy into the state."""
        if not entropy:
            raise CryptoError("reseed entropy must be non-empty")
        self._update(entropy + additional)
        self._reseed_counter = 1

    def generate(self, n_bytes: int, additional: bytes = b"") -> bytes:
        """Produce ``n_bytes`` of deterministic output."""
        if n_bytes < 0:
            raise CryptoError("cannot generate a negative number of bytes")
        if self._reseed_counter > self.RESEED_INTERVAL:
            raise CryptoError("DRBG reseed required")
        trace.record("drbg.generate")
        trace.record("rng.bytes", max(1, n_bytes))
        if additional:
            self._update(additional)
        out = b""
        while len(out) < n_bytes:
            self._value = hmac(self._key, self._value, self.hash_name)
            out += self._value
        self._update(additional)
        self._reseed_counter += 1
        return out[:n_bytes]

    def random_scalar(self, order: int) -> int:
        """Uniform scalar in ``[1, order-1]`` via simple rejection sampling."""
        if order <= 2:
            raise CryptoError(f"group order too small: {order}")
        n_bytes = (order.bit_length() + 7) // 8
        excess_bits = 8 * n_bytes - order.bit_length()
        while True:
            candidate = bytes_to_int(self.generate(n_bytes)) >> excess_bits
            if 1 <= candidate < order:
                return candidate


def rfc6979_nonce(
    private_key: int,
    message_hash: bytes,
    order: int,
    hash_name: str = "sha256",
    extra_entropy: bytes = b"",
) -> int:
    """Deterministic ECDSA nonce ``k`` per RFC 6979.

    Args:
        private_key: the signing key ``x``.
        message_hash: already-hashed message ``H(m)``.
        order: the curve group order ``q``.
        hash_name: HMAC hash (RFC 6979 allows any; we default to SHA-256).
        extra_entropy: optional additional input (RFC 6979 §3.6 variant).
    """
    qlen = order.bit_length()
    holen = HASH_INFO[hash_name].digest_size
    rolen = (qlen + 7) // 8

    def bits2int(data: bytes) -> int:
        value = bytes_to_int(data)
        blen = len(data) * 8
        if blen > qlen:
            value >>= blen - qlen
        return value

    def int2octets(value: int) -> bytes:
        return int_to_bytes(value % order, rolen)

    def bits2octets(data: bytes) -> bytes:
        return int2octets(bits2int(data) % order)

    v = b"\x01" * holen
    k = b"\x00" * holen
    seed = int2octets(private_key) + bits2octets(message_hash) + extra_entropy
    k = hmac(k, v + b"\x00" + seed, hash_name)
    v = hmac(k, v, hash_name)
    k = hmac(k, v + b"\x01" + seed, hash_name)
    v = hmac(k, v, hash_name)
    while True:
        t = b""
        while len(t) < rolen:
            v = hmac(k, v, hash_name)
            t += v
        candidate = bits2int(t)
        if 1 <= candidate < order:
            return candidate
        k = hmac(k, v + b"\x00", hash_name)
        v = hmac(k, v, hash_name)
