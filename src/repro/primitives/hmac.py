"""HMAC (RFC 2104 / FIPS 198-1) over the from-scratch SHA-2 family.

The paper's protocol suite uses HMAC-SHA-256 for the symmetric
authentication steps of the SCIANC and PORAMB baselines and for key
confirmation ("finished") messages of the extended S-ECDSA protocol.
"""

from __future__ import annotations

from .. import trace
from ..errors import CryptoError
from ..utils import constant_time_equal
from .sha2 import HASHES, new_hash


class Hmac:
    """Streaming HMAC with the ``update()/digest()`` interface."""

    def __init__(self, key: bytes, hash_name: str = "sha256") -> None:
        if hash_name not in HASHES:
            raise CryptoError(f"unknown hash {hash_name!r}")
        self.hash_name = hash_name
        hasher_cls = HASHES[hash_name]
        block = hasher_cls.block_size
        if len(key) > block:
            key = hasher_cls(key).digest()
        key = key.ljust(block, b"\x00")
        self._outer_key = bytes(b ^ 0x5C for b in key)
        self._inner = new_hash(hash_name, bytes(b ^ 0x36 for b in key))
        self.digest_size = hasher_cls.digest_size

    def update(self, data: bytes) -> "Hmac":
        """Absorb message bytes; returns self for chaining."""
        self._inner.update(data)
        return self

    def digest(self) -> bytes:
        """Finalize (non-destructively) and return the tag."""
        trace.record("hmac.call")
        inner_digest = self._inner.digest()
        return new_hash(self.hash_name, self._outer_key + inner_digest).digest()

    def hexdigest(self) -> str:
        """Tag as lowercase hex."""
        return self.digest().hex()


def hmac(key: bytes, message: bytes, hash_name: str = "sha256") -> bytes:
    """One-shot HMAC tag."""
    return Hmac(key, hash_name).update(message).digest()


def hmac_verify(
    key: bytes, message: bytes, tag: bytes, hash_name: str = "sha256"
) -> bool:
    """Constant-time(ish) verification of an HMAC tag."""
    return constant_time_equal(hmac(key, message, hash_name), tag)
