"""HMAC (RFC 2104 / FIPS 198-1) over the from-scratch SHA-2 family.

The paper's protocol suite uses HMAC-SHA-256 for the symmetric
authentication steps of the SCIANC and PORAMB baselines and for key
confirmation ("finished") messages of the extended S-ECDSA protocol.

The streaming :class:`Hmac` construction is generic over the active
:mod:`repro.backend` (its inner/outer hashes dispatch), while the
one-shot :func:`hmac` helper lets the backend shortcut the whole
computation — the accelerated backend routes it through the C fast path
of :func:`hmac.digest` with analytically identical trace accounting.
"""

from __future__ import annotations

from .. import trace
from ..backend import HASH_INFO, get_backend
from ..errors import CryptoError
from ..utils import constant_time_equal


class Hmac:
    """Streaming HMAC with the ``update()/digest()`` interface."""

    def __init__(self, key: bytes, hash_name: str = "sha256") -> None:
        info = HASH_INFO.get(hash_name)
        if info is None:
            raise CryptoError(f"unknown hash {hash_name!r}")
        self.hash_name = hash_name
        backend = get_backend()
        block = info.block_size
        if len(key) > block:
            key = backend.hash_digest(hash_name, key)
        key = key.ljust(block, b"\x00")
        self._outer_key = bytes(b ^ 0x5C for b in key)
        self._inner = backend.create_hash(
            hash_name, bytes(b ^ 0x36 for b in key)
        )
        self.digest_size = info.digest_size

    def update(self, data: bytes) -> "Hmac":
        """Absorb message bytes; returns self for chaining."""
        self._inner.update(data)
        return self

    def digest(self) -> bytes:
        """Finalize (non-destructively) and return the tag."""
        trace.record("hmac.call")
        inner_digest = self._inner.digest()
        return get_backend().hash_digest(
            self.hash_name, self._outer_key + inner_digest
        )

    def hexdigest(self) -> str:
        """Tag as lowercase hex."""
        return self.digest().hex()


def hmac(key: bytes, message: bytes, hash_name: str = "sha256") -> bytes:
    """One-shot HMAC tag (dispatches through the active backend)."""
    return get_backend().hmac_digest(key, message, hash_name)


def hmac_verify(
    key: bytes, message: bytes, tag: bytes, hash_name: str = "sha256"
) -> bool:
    """Constant-time(ish) verification of an HMAC tag."""
    return constant_time_equal(hmac(key, message, hash_name), tag)
