"""Block-cipher chaining modes and padding: ECB, CBC, CTR, PKCS#7.

The paper's protocols encrypt the STS authentication response
(``Resp = encrypt(K_S, dsign)``) with AES-128; we default to CBC with
PKCS#7, matching the typical tiny-AES deployment, and provide CTR for
stream-style use.

Padding and argument validation live here and are backend-independent;
the block chaining itself is delegated to the active
:mod:`repro.backend` cipher, whose bulk helpers process whole messages
(one C call each on the accelerated backend) while recording the same
one-``aes.block``-event-per-block accounting the reference loops do.
"""

from __future__ import annotations

from ..backend import get_backend
from ..errors import CryptoError
from ..utils import xor_bytes
from .aes import BLOCK_SIZE


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding up to a whole number of blocks."""
    if not 1 <= block_size <= 255:
        raise CryptoError(f"invalid block size {block_size}")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size != 0:
        raise CryptoError("padded data length is not a multiple of block size")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise CryptoError(f"invalid padding byte {pad_len}")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise CryptoError("inconsistent PKCS#7 padding")
    return data[:-pad_len]


def ecb_encrypt(key: bytes, plaintext: bytes) -> bytes:
    """AES-ECB on pre-padded data (exposed mainly for tests/vectors)."""
    if len(plaintext) % BLOCK_SIZE:
        raise CryptoError("ECB requires whole blocks")
    return get_backend().create_cipher(key).encrypt_ecb(plaintext)


def ecb_decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """AES-ECB decryption of whole blocks."""
    if len(ciphertext) % BLOCK_SIZE:
        raise CryptoError("ECB requires whole blocks")
    return get_backend().create_cipher(key).decrypt_ecb(ciphertext)


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes, pad: bool = True) -> bytes:
    """AES-CBC encryption (PKCS#7-padded by default)."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if pad:
        plaintext = pkcs7_pad(plaintext)
    elif len(plaintext) % BLOCK_SIZE:
        raise CryptoError("unpadded CBC requires whole blocks")
    return get_backend().create_cipher(key).encrypt_cbc(iv, plaintext)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes, pad: bool = True) -> bytes:
    """AES-CBC decryption (validates PKCS#7 padding by default)."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise CryptoError("CBC ciphertext must be whole non-empty blocks")
    plaintext = get_backend().create_cipher(key).decrypt_cbc(iv, ciphertext)
    return pkcs7_unpad(plaintext) if pad else plaintext


def ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate an AES-CTR keystream (128-bit big-endian counter)."""
    if len(nonce) != BLOCK_SIZE:
        raise CryptoError(f"CTR nonce must be {BLOCK_SIZE} bytes")
    return get_backend().create_cipher(key).ctr_keystream(nonce, length)


def ctr_crypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """AES-CTR encryption/decryption (symmetric)."""
    return xor_bytes(data, ctr_keystream(key, nonce, len(data)))
