#!/usr/bin/env python3
"""Declarative fleet scenarios: rush hour, roaming — and an adversary.

The scenario engine (:mod:`repro.fleet.scenario`) turns the fleet
workload itself into data: arrival processes, behavior profiles and
adversarial injections compose into a :class:`~repro.fleet.Scenario`
that compiles deterministically and round-trips through JSON.  This
example runs two of them:

1. **rush-hour-roam** — burst-wave arrivals with a platoon convoy pinned
   to one shard and a roamer block live-migrating every few records;
2. **replay-storm** — the same fleet under attack: captured application
   records replayed at a gateway, every single one rejected by the
   record channel's sequence/MAC checks.

Run:  PYTHONPATH=src python examples/fleet_scenarios.py
"""

from __future__ import annotations

import os

from repro.fleet import (
    BehaviorProfile,
    BurstArrivals,
    FleetConfig,
    FleetOrchestrator,
    ReplayStorm,
    Scenario,
    load_scenario,
)

#: The examples smoke test (and CI) sets REPRO_EXAMPLES_QUICK=1 to run a
#: scaled-down fleet; the narrative stays identical.
QUICK = bool(os.environ.get("REPRO_EXAMPLES_QUICK"))
VEHICLES = 12 if QUICK else 24


def fleet_config() -> FleetConfig:
    """The common two-shard fleet both scenarios run on."""
    return FleetConfig(
        n_vehicles=VEHICLES,
        seed=b"fleet-scenarios-example",
        records_per_vehicle=8,
        max_records=5,
        send_interval_ms=25.0,
        arrival_spread_ms=120.0,
        shards=2,
    )


def main() -> None:
    """Run the workload scenario, then the adversarial one."""
    config = fleet_config()

    rush = Scenario(
        name="rush-hour-roam",
        description="Burst arrivals + a pinned convoy + roamers.",
        arrivals=BurstArrivals(
            waves=3, wave_interval_ms=400.0, wave_spread_ms=120.0
        ),
        profiles=(
            BehaviorProfile(name="platoon", count=4, convoy_size=4),
            BehaviorProfile(name="roamer", count=2, roam_every=3),
        ),
    )
    print(f"Scenario spec (round-trips through JSON):\n{rush.as_json()}\n")
    assert load_scenario(rush.as_json()) == rush

    orchestrator = FleetOrchestrator(config, scenario=rush)
    print(
        f"Unleashing {VEHICLES} vehicles as {rush.name!r}"
        f" (schedule digest {orchestrator.schedule.digest()[:16]}...)\n"
    )
    result = orchestrator.run()
    print(result.stats.render())
    convoy = orchestrator.schedule.convoys[0]
    print(
        f"\nConvoy {convoy} arrived together at"
        f" {result.vehicles[convoy[0]].arrival_ms:.1f} ms, pinned to"
        f" shard {result.vehicles[convoy[0]].shard};"
        f" roamers migrated {result.stats.migrations} time(s)."
    )

    storm = Scenario(
        name="replay-storm",
        description="Captured records replayed at the gateway.",
        injections=(
            ReplayStorm(at_ms=4_000.0, replays=24, target_shard=0),
        ),
    )
    print(f"\nNow the adversary: {storm.name!r}...\n")
    stats = FleetOrchestrator(config, scenario=storm).run().stats
    for injection in stats.injection_stats:
        print(f"  {injection.row()}")
    assert stats.attack_successes == 0, "a replay was accepted?!"
    print(
        "\nEvery replay died on the sequence window / MAC check —"
        f" {stats.attack_rejections}/{stats.attack_attempts} rejected,"
        " zero forgeries."
    )
    print(f"Stats digest (reproducible): {stats.digest()}")


if __name__ == "__main__":
    main()
