#!/usr/bin/env python3
"""Fleet provisioning: certificate sessions vs communication sessions.

The paper distinguishes the *certificate session* (validity of the issued
certificates, e.g. one engine start) from the *communication session*
(one message exchange).  This example provisions a small vehicle network
— gateway CA plus several ECUs — and demonstrates:

* pairwise STS sessions between any two ECUs under one certificate
  session (every communication session gets a fresh key),
* certificate expiry ending the certificate session,
* re-issuance (a new certificate session) and how PORAMB's pairwise
  pre-shared keys scale quadratically while ECQV needs only the CA key.

Run:  python examples/fleet_provisioning.py
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.protocols import run_protocol
from repro.testbed import make_testbed

ECUS = ("bms", "evcc", "inverter", "obc", "gateway2")


def main() -> None:
    testbed = make_testbed(ECUS, seed=b"fleet", validity_seconds=3600)
    print(f"Provisioned {len(ECUS)} ECUs under one CA"
          f" (certificate session: 1 h).")
    print(f"  stored trust anchors per ECU with ECQV: 1 (the CA key)")
    n = len(ECUS)
    print(f"  pre-shared keys PORAMB would need: {n - 1} per ECU,"
          f" {n * (n - 1) // 2} fleet-wide\n")

    # Pairwise communication sessions - every pair, fresh keys each time.
    print("Pairwise STS sessions (communication sessions):")
    seen_keys: set[bytes] = set()
    for i, left in enumerate(ECUS):
        for right in ECUS[i + 1 :]:
            party_a, party_b = testbed.party_pair("sts", left, right)
            transcript = run_protocol(party_a, party_b)
            key = party_a.session_key
            assert key not in seen_keys
            seen_keys.add(key)
            print(f"  {left:9s} <-> {right:9s} key={key.hex()[:16]}…"
                  f" ({transcript.total_bytes} B exchanged)")
    print(f"  {len(seen_keys)} sessions, {len(seen_keys)} distinct keys\n")

    # Repeat a pair: still a fresh key (DKD).
    party_a, party_b = testbed.party_pair("sts", "bms", "evcc")
    run_protocol(party_a, party_b)
    assert party_a.session_key not in seen_keys
    print("Re-running bms<->evcc inside the same certificate session"
          " still derives a fresh key (DKD).\n")

    # End of the certificate session: certificates expire.
    ctx_a, ctx_b = testbed.context_pair("bms", "evcc")
    ctx_a.now = ctx_b.now = testbed.now + 7200  # 2 h later
    from repro.protocols import make_sts_pair

    expired_a, expired_b = make_sts_pair(ctx_a, ctx_b)
    try:
        run_protocol(expired_a, expired_b)
        raise ReproError("expired certificates must not establish a session")
    except Exception as exc:
        print(f"After expiry, session establishment fails as expected:\n"
              f"  {type(exc).__name__}: {exc}\n")

    # New certificate session: re-issue and continue.
    from repro.ecqv import issue_credential
    from repro.primitives import HmacDrbg

    for name in ("bms", "evcc"):
        testbed.credentials[name] = issue_credential(
            testbed.ca,
            testbed.credentials[name].subject_id,
            HmacDrbg(b"reissue|" + name.encode()),
            validity_seconds=3600,
        )
    party_a, party_b = testbed.party_pair("sts", "bms", "evcc")
    transcript = run_protocol(party_a, party_b)
    print("Re-issued certificates (new certificate session);"
          " sessions establish again:")
    print(f"  bms<->evcc key={party_a.session_key.hex()[:16]}…,"
          f" serials now {transcript.party_a.ctx.credential.certificate.serial}"
          f"/{transcript.party_b.ctx.credential.certificate.serial}")


if __name__ == "__main__":
    main()
