#!/usr/bin/env python3
"""The paper's prototype (§V-C): BMS ↔ EVCC over CAN-FD, STS vs S-ECDSA.

Two S32K144 ECUs — a battery management system controller and an electric
vehicle charging controller — establish a secure session over a CAN-FD
link (0.5 Mbit/s nominal / 2 Mbit/s data phase) with ISO-TP message
fragmentation.  The script reconstructs the paper's Fig. 7 timelines for
both the proposed STS protocol and the conventional static S-ECDSA and
reports the headline comparison (paper: 3.257 s vs 2.677 s, +21.67 %,
physical transfer < 1 ms).

Run:  python examples/bms_evcc_session.py
"""

from __future__ import annotations

from repro.experiments.fig7 import prototype_stack
from repro.hardware import S32K144, estimate_energy
from repro.network import NetworkStack
from repro.protocols import run_protocol
from repro.sim import simulate_session_timeline
from repro.testbed import make_testbed


def main() -> None:
    testbed = make_testbed(("bms", "evcc"), seed=b"bms-evcc-prototype")
    results = {}
    for protocol in ("sts", "s-ecdsa"):
        party_a, party_b = testbed.party_pair(protocol, "bms", "evcc")
        transcript = run_protocol(party_a, party_b)
        stack: NetworkStack = prototype_stack()
        timeline = simulate_session_timeline(
            transcript, S32K144, stack=stack, device_names=("BMS", "EVCC")
        )
        results[protocol] = (transcript, timeline, stack)
        print(timeline.render())
        print(
            f"  bus: {stack.bus.frames_sent} CAN-FD frames,"
            f" {stack.bus.bytes_sent} data bytes,"
            f" {stack.bus.busy_ms:.3f} ms on the wire"
        )
        energy = estimate_energy(transcript, S32K144)
        print(f"  energy (PPK2-style estimate): {energy.total_mj:.1f} mJ\n")

    sts_ms = results["sts"][1].total_ms
    base_ms = results["s-ecdsa"][1].total_ms
    print("Headline comparison (paper: 3.257 s vs 2.677 s, +21.67 %):")
    print(f"  STS:      {sts_ms / 1000:.3f} s")
    print(f"  S-ECDSA:  {base_ms / 1000:.3f} s")
    print(f"  overhead: {100 * (sts_ms / base_ms - 1):+.2f} %")
    print(
        "  ...for which STS buys forward secrecy that S-ECDSA lacks"
        " (see examples/security_audit.py)"
    )


if __name__ == "__main__":
    main()
