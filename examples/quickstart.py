#!/usr/bin/env python3
"""Quickstart: provision ECQV credentials, run STS, exchange secure data.

This walks the three stages of the paper's Fig. 1 architecture:

1. device authentication & deployment — a CA is set up and every device
   learns its public key;
2. certificate derivation — each device obtains an ECQV implicit
   certificate (101 bytes) and reconstructs its own key pair;
3. session establishment — two devices run the paper's STS dynamic key
   derivation and open an encrypted session.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.protocols import SecureSession, run_protocol
from repro.testbed import make_testbed


def main() -> None:
    # --- stages 1 + 2: provision a CA and two devices ---------------------
    testbed = make_testbed(("alice", "bob"), seed=b"quickstart")
    alice_cred = testbed.credentials["alice"]
    print("CA public key and device credentials provisioned:")
    print(f"  CA id:        {testbed.ca.ca_id.decode().rstrip('-')}")
    print(f"  certificate:  {len(alice_cred.certificate.encode())} bytes"
          " (minimal ECQV encoding)")
    print(f"  alice serial: {alice_cred.certificate.serial}")

    # --- stage 3: STS dynamic key derivation ------------------------------
    party_a, party_b = testbed.party_pair("sts", "alice", "bob")
    transcript = run_protocol(party_a, party_b)
    print("\nSTS-ECQV session established:")
    for line in transcript.layout():
        print(f"  {line}")
    print(f"  total: {transcript.n_steps} messages,"
          f" {transcript.total_bytes} bytes")
    assert party_a.session_key == party_b.session_key
    print(f"  session key: {party_a.session_key.hex()[:32]}… (48 bytes)")
    print(f"  mutual authentication: A={party_a.peer_authenticated},"
          f" B={party_b.peer_authenticated}")

    # --- encrypted application traffic -------------------------------------
    chan_a = SecureSession(party_a.session_key, "A")
    chan_b = SecureSession(party_b.session_key, "B")
    request = b"state of charge?"
    record = chan_a.encrypt(request)
    print("\nEncrypted session traffic:")
    print(f"  alice -> bob: {record.hex()[:48]}… ({len(record)} bytes)")
    print(f"  bob decrypts: {chan_b.decrypt(record).decode()!r}")
    reply = chan_b.encrypt(b"soc=87%")
    print(f"  bob -> alice: {chan_a.decrypt(reply).decode()!r}")

    # --- the forward-secrecy point of the paper, in two lines --------------
    party_a2, party_b2 = testbed.party_pair("sts", "alice", "bob")
    run_protocol(party_a2, party_b2)
    assert party_a2.session_key != party_a.session_key
    print("\nA second session derives a completely fresh key"
          " (dynamic key derivation):")
    print(f"  session 1: {party_a.session_key.hex()[:24]}…")
    print(f"  session 2: {party_a2.session_key.hex()[:24]}…")


if __name__ == "__main__":
    main()
