#!/usr/bin/env python3
"""Tour of the extensions built beyond the paper's evaluation.

Four pieces the paper points at but does not evaluate:

1. **Security modules / hardware accelerators** — the paper's announced
   future work: Table I regenerated under SHE/ECC/HSM offload presets.
2. **On-wire provisioning** — Fig. 1 stages 1–2 (device authentication
   and certificate distribution via the gateway CA) executed over CAN-FD.
3. **Group keys** — authenticated group sessions on top of pairwise STS
   (the Puellen et al. use case from the related work).
4. **In-session key ratcheting** — forward secrecy *within* a session.

Run:  python examples/extensions_tour.py
"""

from __future__ import annotations

from repro.ec import SECP256R1
from repro.ecqv import CertificateAuthority
from repro.hardware import STM32F767, accelerator_study, render_accelerator_study
from repro.network import NetworkStack
from repro.primitives import HmacDrbg
from repro.protocols import (
    ProvisioningDevice,
    ProvisioningGateway,
    form_group,
    provision_over_network,
    ratcheting_pair,
)
from repro.testbed import device_id, make_testbed


def accelerators() -> None:
    print("=" * 72)
    print("1. Security modules & accelerators (paper future work)")
    print("=" * 72)
    study = accelerator_study(STM32F767)
    print(render_accelerator_study(study, "STM32F767"))
    gap_sw = study["none"]["sts"] - study["none"]["s-ecdsa"]
    gap_hsm = study["full-hsm"]["sts"] - study["full-hsm"]["s-ecdsa"]
    print(
        f"\n  forward secrecy's absolute price: {gap_sw:.0f} ms in software,"
        f" {gap_hsm:.1f} ms with a full HSM -\n  the ~24 % relative overhead"
        " is structural, but offload makes it trivially affordable.\n"
    )


def provisioning() -> None:
    print("=" * 72)
    print("2. Certificate provisioning over CAN-FD (Fig. 1 stages 1-2)")
    print("=" * 72)
    ca = CertificateAuthority(SECP256R1, device_id("gateway-ca"), HmacDrbg(b"gw"))
    enrolment_key = HmacDrbg(b"factory").generate(32)
    gateway = ProvisioningGateway(ca, {bytes(device_id("new-ecu")): enrolment_key})
    device = ProvisioningDevice(
        SECP256R1, device_id("new-ecu"), enrolment_key, HmacDrbg(b"new-ecu")
    )
    credential, bus_ms = provision_over_network(device, gateway, NetworkStack())
    print(f"  device authenticated with factory enrolment key,"
          f" certificate issued on the wire")
    print(f"  request 81 B + response 165 B, bus time {bus_ms:.3f} ms")
    print(f"  serial {credential.certificate.serial},"
          f" subject {credential.subject_id.decode().rstrip('-')}\n")


def group_keys() -> None:
    print("=" * 72)
    print("3. Group keys over pairwise STS (in-vehicle domain groups)")
    print("=" * 72)
    names = ("bms", "evcc", "inverter", "obc")
    testbed = make_testbed(("gateway",) + names, seed=b"group-tour")
    member_ctxs = {
        testbed.credentials[n].subject_id: testbed.context(n) for n in names
    }
    leader, members = form_group(
        testbed.context("gateway"), member_ctxs, group_id=42
    )
    print(f"  {len(members)} members keyed via pairwise STS;"
          f" group key epoch {leader.epoch}:"
          f" {leader.group_key.hex()[:24]}…")
    revoked = leader.members[0]
    messages = leader.revoke(revoked)
    for member_id, message in messages.items():
        members[member_id].accept(message)
    print(f"  revoked {revoked.decode().rstrip('-')};"
          f" epoch {leader.epoch} key redistributed to"
          f" {len(messages)} remaining members")
    print(f"  revoked member still holds the old epoch:"
          f" {members[revoked].epoch} (excluded)\n")


def ratcheting() -> None:
    print("=" * 72)
    print("4. In-session key ratcheting (key-lifetime hygiene)")
    print("=" * 72)
    key = HmacDrbg(b"session").generate(48)
    a, b = ratcheting_pair(key, records_per_epoch=3)
    keys_seen = {a.current_key}
    for i in range(9):
        assert b.decrypt(a.encrypt(b"telemetry %d" % i)) == b"telemetry %d" % i
        keys_seen.add(a.current_key)
    print(f"  9 records exchanged, epoch now {a.epoch},"
          f" {len(keys_seen)} distinct epoch keys used")
    print("  earlier-epoch keys are discarded: compromise of the current"
          " key\n  cannot decrypt earlier records of the same session\n")


def main() -> None:
    accelerators()
    provisioning()
    group_keys()
    ratcheting()


if __name__ == "__main__":
    main()
