#!/usr/bin/env python3
"""Security audit: run the paper's threat analysis as executable attacks.

Reproduces Table III by *attacking real protocol runs*:

* records a session (KD exchange + encrypted traffic) as a wire adversary,
* later "compromises" the devices' long-term keys,
* tries to recompute the session key and decrypt the recorded traffic,
* additionally attempts key-compromise impersonation (KCI) and a forged
  certificate man-in-the-middle.

Only the paper's STS design survives the forward-secrecy attack.

Run:  python examples/security_audit.py
"""

from __future__ import annotations

from repro.security import (
    evaluate_security_matrix,
    kci_impersonation,
    mitm_without_credentials,
    record_then_compromise,
    render_threat_model,
)
from repro.testbed import make_testbed


def main() -> None:
    testbed = make_testbed(("alice", "bob"), seed=b"security-audit")
    protocols = ("s-ecdsa", "sts", "scianc", "poramb")

    print("=" * 70)
    print("Attack 1: record now, compromise keys later (forward secrecy)")
    print("=" * 70)
    for name in protocols:
        result = record_then_compromise(testbed, name)
        verdict = "BROKEN " if result.success else "SECURE "
        print(f"  [{verdict}] {name:10s} {result.detail}")
        for plaintext in result.recovered_plaintexts:
            print(f"             recovered: {plaintext.decode()!r}")

    print()
    print("=" * 70)
    print("Attack 2: key-compromise impersonation (KCI)")
    print("=" * 70)
    for name in protocols:
        result = kci_impersonation(testbed, name)
        verdict = "BROKEN " if result.success else "SECURE "
        print(f"  [{verdict}] {name:10s} {result.detail}")

    print()
    print("=" * 70)
    print("Attack 3: man-in-the-middle with a forged certificate")
    print("=" * 70)
    for name in protocols:
        result = mitm_without_credentials(testbed, name)
        verdict = "BROKEN " if result.success else "SECURE "
        print(f"  [{verdict}] {name:10s} {result.detail}")

    print()
    print("=" * 70)
    print("Resulting security matrix (paper Table III)")
    print("=" * 70)
    matrix = evaluate_security_matrix(testbed)
    print(matrix.render())
    print(f"\n  matches the paper's Table III: {matrix.matches_paper()}")

    print()
    print(render_threat_model())


if __name__ == "__main__":
    main()
