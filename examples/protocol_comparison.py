#!/usr/bin/env python3
"""Cross-device protocol comparison: Tables I & II and Figs. 3 & 4.

Runs all seven KD protocol variants (real cryptography), prices them on
the four calibrated embedded device models, and prints the reproduced
performance tables next to the paper's published numbers — including the
STS Opt. I/II schedules (paper Eqs. 7/8) and the per-operation breakdown.

Run:  python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro.experiments import run_fig3, run_fig4, run_table1, run_table2
from repro.hardware import DEVICES, estimate_energy
from repro.protocols import TABLE_ORDER, run_protocol
from repro.testbed import make_testbed


def main() -> None:
    print("=" * 76)
    print("Table I - execution time (modelled ms, delta vs paper)")
    print("=" * 76)
    table1 = run_table1()
    print(table1.render())

    print()
    print("=" * 76)
    print("Fig. 3 - STS operation breakdown on the STM32F767")
    print("=" * 76)
    print(run_fig3().render())

    print()
    print("=" * 76)
    print("Fig. 4 - total processing time comparison")
    print("=" * 76)
    print(run_fig4(table1=table1).render())

    print()
    print("=" * 76)
    print("Table II - communication steps and transmission overhead")
    print("=" * 76)
    print(run_table2().render())

    print()
    print("=" * 76)
    print("Energy estimates per session establishment (mJ, both devices)")
    print("=" * 76)
    testbed = make_testbed(("alice", "bob"), seed=b"comparison")
    header = f"{'Protocol':14s}" + "".join(
        f"{d.label:>16s}" for d in DEVICES.values()
    )
    print(header)
    for protocol in TABLE_ORDER:
        party_a, party_b = testbed.party_pair(protocol, "alice", "bob")
        transcript = run_protocol(party_a, party_b)
        row = f"{protocol:14s}"
        for device in DEVICES.values():
            row += f"{estimate_energy(transcript, device).total_mj:16.1f}"
        print(row)


if __name__ == "__main__":
    main()
