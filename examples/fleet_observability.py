#!/usr/bin/env python3
"""Fleet observability: trace a run, export it, prove it changed nothing.

The observability layer (``repro.obs``) watches a fleet run from the
outside: hierarchical sim-time spans (run → shard → vehicle → enroll /
establish / re-key), labeled mergeable metrics, progress heartbeats —
all deterministic, all digest-neutral.  This example:

1. runs the same fleet twice, once bare and once fully instrumented,
   and asserts the stats digests are **bit-identical** (telemetry never
   perturbs behaviour);
2. exports the traced run as Chrome trace-event JSON — drag it onto
   https://ui.perfetto.dev to scrub through the fleet on the simulated
   clock — and as a schema-validated JSONL archive;
3. prints the markdown rollup and attaches it to a reproduction report
   section, the same hook ``repro.analysis.report`` exposes.

Run:  PYTHONPATH=src python examples/fleet_observability.py
"""

from __future__ import annotations

import os

from repro.fleet import FleetConfig, run_fleet
from repro.obs import Observer, read_jsonl, validate_chrome_trace, validate_events

QUICK = bool(os.environ.get("REPRO_EXAMPLES_QUICK"))
VEHICLES = 6 if QUICK else 16

TRACE_PATH = "fleet_trace.json"
JSONL_PATH = "fleet_trace.jsonl"


def main() -> None:
    config = FleetConfig(
        n_vehicles=VEHICLES,
        seed=b"fleet-observability-example",
        records_per_vehicle=6,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=60.0,
        shards=2,
        v2v_fraction=0.3,
    )

    print(f"Running {VEHICLES} vehicles bare, then instrumented...\n")
    bare = run_fleet(config)

    obs = Observer(wall_clock=True, heartbeat_interval_ms=500.0)
    traced = run_fleet(config, obs=obs)

    assert traced.stats.digest() == bare.stats.digest(), (
        "telemetry must never change behaviour"
    )
    print(f"Digest with and without telemetry: {bare.stats.digest()[:32]}...")
    print("(bit-identical — observation is free of behavioural side effects)\n")

    obs.validate()  # span tree well-formed + event stream schema-clean
    spans = obs.spans.finished()
    print(
        f"Recorded {len(spans)} spans, "
        f"{len(obs.metrics.snapshot().counters)} counter series, "
        f"{len(obs.heartbeats)} heartbeats."
    )

    trace = obs.export_chrome_trace(TRACE_PATH)
    chrome_events = validate_chrome_trace(trace)
    print(
        f"Chrome trace -> {TRACE_PATH} ({chrome_events} events;"
        " open in https://ui.perfetto.dev)"
    )

    count = obs.export_jsonl(JSONL_PATH)
    validated = validate_events(read_jsonl(JSONL_PATH))
    assert validated == count
    print(f"JSONL archive -> {JSONL_PATH} ({count} events, schema-validated)\n")

    print("Telemetry rollup:\n")
    print(obs.markdown_rollup())

    last = obs.heartbeats[-1]
    print(
        f"Final heartbeat: {last['vehicles_done']}/{last['vehicles_total']}"
        f" vehicles done at sim-time {last['sim_ms']:.0f} ms"
        + (
            f", peak RSS {last['wall']['peak_rss_kb']} kB"
            if "wall" in last
            else ""
        )
    )


if __name__ == "__main__":
    main()
