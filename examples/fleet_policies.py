#!/usr/bin/env python3
"""Declarative fleet policies: swap the fleet's brain without forking it.

The policy engine (:mod:`repro.fleet.policy`) turns the orchestrator's
run-time choices — which shard a vehicle joins, when it migrates, when
sessions re-key, where failover adoption lands — into declarative
condition → action rules that round-trip through JSON.  This example
walks the layer end to end:

1. **Specs are data** — a rule serializes to canonical JSON and loads
   back losslessly;
2. **The default bundle is the legacy brain, bit for bit** — running
   with ``policy="default"`` reproduces the exact digest of a run with
   no policy selected at all;
3. **An ablation** — the same fleet under a replay storm, steered by
   the ``default`` and ``storm-hardened`` bundles: the hardened fleet
   re-keys early inside the storm window, and the engine's per-rule
   decision tallies attribute every action;
4. **Scenario-attached rules** — a one-off rule rides along on a
   :class:`~repro.fleet.Scenario` without registering a bundle.

Run:  PYTHONPATH=src python examples/fleet_policies.py
"""

from __future__ import annotations

import dataclasses
import os

from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    ReplayStorm,
    Scenario,
    StormRekey,
    load_policy,
    policy_json,
)

#: The examples smoke test (and CI) sets REPRO_EXAMPLES_QUICK=1 to run a
#: scaled-down fleet; the narrative stays identical.
QUICK = bool(os.environ.get("REPRO_EXAMPLES_QUICK"))
VEHICLES = 8 if QUICK else 16


def fleet_config(policy: str | None = None) -> FleetConfig:
    """A two-shard fleet whose sessions outlive the storm-rekey budget.

    ``max_records=6`` sits above :class:`StormRekey`'s budget of 4, so
    the storm-hardened bundle has room to re-key *earlier* than the
    managers' own cap; round-robin assignment populates both shards
    deterministically.
    """
    return FleetConfig(
        n_vehicles=VEHICLES,
        seed=b"fleet-policies-example",
        # 12 records split 6+6: the storm window overlaps the second
        # session while it still has >= 4 records to carry, so the
        # hardened bundle's budget of 4 can actually pre-empt the cap.
        records_per_vehicle=12,
        max_records=6,
        send_interval_ms=20.0,
        arrival_spread_ms=50.0,
        shards=2,
        shard_policy="round-robin",
        policy=policy,
    )


def storm_scenario() -> Scenario:
    """A mid-traffic replay storm (records start flowing ~3.7 s in)."""
    return Scenario(
        name="policy-example-storm",
        injections=(
            ReplayStorm(at_ms=4_500.0, replays=12, target_shard=1),
        ),
    )


def tallies(orchestrator: FleetOrchestrator) -> str:
    """Render the engine's per-(point, rule) decision counters."""
    return (
        " ".join(
            f"{point}:{rule}={count}"
            for (point, rule), count in sorted(
                orchestrator.policy.decision_counts.items()
            )
        )
        or "(none)"
    )


def main() -> None:
    """Specs, bit-parity, the ablation, scenario-attached rules."""
    # 1. A rule is data: canonical JSON, lossless round-trip.
    rule = StormRekey(window_ms=1_500.0, budget=3)
    print(f"Policy spec (round-trips through JSON): {policy_json(rule)}")
    assert load_policy(policy_json(rule)) == rule

    # 2. The default bundle IS the legacy behavior, bit for bit.
    scenario = storm_scenario()
    implicit = FleetOrchestrator(
        fleet_config(), scenario=scenario
    ).run().stats
    explicit = FleetOrchestrator(
        fleet_config(policy="default"), scenario=scenario
    ).run().stats
    assert implicit.digest() == explicit.digest()
    print(
        f"\npolicy=None and policy='default' agree bit-for-bit:"
        f" {explicit.digest()[:16]}... (stats.policy={explicit.policy!r})"
    )

    # 3. The ablation: default vs storm-hardened under the same storm.
    print(f"\n{VEHICLES} vehicles, replay storm at 4.5 s, two bundles:\n")
    results = {}
    for bundle in ("default", "storm-hardened"):
        orchestrator = FleetOrchestrator(
            fleet_config(policy=bundle), scenario=scenario
        )
        stats = orchestrator.run().stats
        results[bundle] = stats
        assert stats.attack_successes == 0, "a replay was accepted?!"
        print(
            f"  {bundle:<15s} rekeys={stats.rekeys:<3d}"
            f" sessions={stats.sessions_established:<4d}"
            f" {stats.attack_rejections}/{stats.attack_attempts}"
            " replays rejected"
        )
        print(f"  {'':<15s} decisions: {tallies(orchestrator)}")
    assert results["storm-hardened"].rekeys >= results["default"].rekeys
    print(
        "\nThe hardened bundle re-keys inside the storm window, so a"
        " captured key protects less traffic — same fleet, same seed,"
        " different brain."
    )

    # 4. One-off rules ride on the scenario itself — no bundle needed.
    custom = dataclasses.replace(
        scenario, name="policy-example-custom", policies=(rule,)
    )
    stats = FleetOrchestrator(
        fleet_config(), scenario=custom
    ).run().stats
    print(
        f"\nScenario-attached {rule.kind!r} (budget=3):"
        f" rekeys={stats.rekeys} vs default {results['default'].rekeys};"
        f" digest (reproducible): {stats.digest()[:16]}..."
    )


if __name__ == "__main__":
    main()
