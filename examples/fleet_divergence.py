#!/usr/bin/env python3
"""Divergence localization: fork a run config, diff the archives.

The reproduction's parity contract is binary — two stats digests either
match or they do not.  The divergence localizer (``repro.obs``) answers
the question the digest cannot: *where* did two runs first part ways?
This example:

1. runs a baseline fleet and a deliberately forked one (one extra
   record per vehicle — the kind of quiet config drift that breaks
   parity in real debugging sessions) and archives both as JSONL;
2. proves the baseline agrees with itself (self-diff → identical, one
   digest comparison) and lints both archives clean with tracelint;
3. diffs the two archives with ``diff_runs`` and prints the localized
   :class:`~repro.obs.DivergenceReport`: the first diverging
   vehicle/span path, the event-level field delta and the
   metric-plane diff — found in ``O(fanout x depth)`` node
   comparisons, not by scanning every event;
4. attaches the report to a ``ReproductionReport`` section, the same
   hook CI uses.

Run:  PYTHONPATH=src python examples/fleet_divergence.py
"""

from __future__ import annotations

import dataclasses
import os
import tempfile

from repro.analysis import ReproductionReport, attach_divergence
from repro.fleet import FleetConfig, run_fleet
from repro.obs import Observer, diff_runs, lint_archive, write_jsonl

QUICK = bool(os.environ.get("REPRO_EXAMPLES_QUICK"))
VEHICLES = 6 if QUICK else 16


def archive_run(config: FleetConfig, path: str) -> Observer:
    """Run one observed fleet and write its deterministic archive."""
    obs = Observer(heartbeat_interval_ms=500.0)
    run_fleet(config, obs=obs)
    write_jsonl(path, obs.deterministic_events())
    return obs


def main() -> None:
    baseline_config = FleetConfig(
        n_vehicles=VEHICLES,
        seed=b"fleet-divergence-example",
        records_per_vehicle=4,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=60.0,
        shards=2,
    )
    # The fork: one extra record per vehicle.  Same seed, same fleet —
    # the runs agree right up to the point the first vehicle keeps
    # transmitting past the baseline's budget.
    forked_config = dataclasses.replace(
        baseline_config, records_per_vehicle=5
    )

    with tempfile.TemporaryDirectory() as tmp:
        baseline_path = os.path.join(tmp, "baseline.jsonl")
        forked_path = os.path.join(tmp, "forked.jsonl")
        print(f"Archiving the baseline run ({VEHICLES} vehicles)...")
        archive_run(baseline_config, baseline_path)
        print("Archiving the forked run (records_per_vehicle +1)...\n")
        archive_run(forked_config, forked_path)

        # Both archives satisfy every tracelint invariant: the fork is
        # a *different valid run*, not a corrupted one — exactly why a
        # lint pass alone cannot find it and a diff is needed.
        for name, path in (("baseline", baseline_path),
                           ("forked", forked_path)):
            findings = lint_archive(path)
            assert not findings, findings
            print(f"tracelint {name:<9}: 0 findings (clean)")
        print()

        self_diff = diff_runs(baseline_path, baseline_path)
        assert not self_diff.diverged
        print(
            "Self-diff: identical"
            f" ({self_diff.nodes_compared} digest comparison —"
            " matching roots prove every event equal)\n"
        )

        report = diff_runs(baseline_path, forked_path)
        assert report.diverged
        print("=" * 64)
        print(report.to_markdown())
        print("=" * 64)
        print(
            f"\nLocalized in {report.nodes_compared} node comparisons"
            f" across {VEHICLES * 4}+ archived events — the radix tree"
            " walks straight to the first diverging leaf."
        )

        repro_report = ReproductionReport(sections={}, verdicts={})
        attach_divergence(repro_report, report)
        verdict = repro_report.verdicts["divergence"]
        print(
            "Attached to the reproduction report:"
            f" section 'divergence', verdict {'PASS' if verdict else 'FAIL'}"
            " (FAIL is correct — these runs were supposed to differ)."
        )


if __name__ == "__main__":
    main()
