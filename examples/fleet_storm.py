#!/usr/bin/env python3
"""Fleet storm: concurrent enrollment, session establishment and re-keys.

Scales the paper's two-station scenario to a whole vehicle fleet hitting
one central CA/gateway at once:

* every vehicle enrolls for an ECQV credential — requests queue at the
  contended CA and are issued in **batches** (one shared Jacobian
  normalization per batch, Montgomery's trick);
* every vehicle then derives session keys with the gateway via STS and
  sends application records until the enforced session-key policy
  (record budget) forces a re-key — the paper's motivation, operating
  at fleet scale;
* throughput, latency percentiles and energy come from the calibrated
  hardware cost models (vehicles on STM32F767, gateway on RPi 4).

Run:  PYTHONPATH=src python examples/fleet_storm.py
"""

from __future__ import annotations

import os

from repro.fleet import FleetConfig, FleetOrchestrator

#: The examples smoke test (and CI) sets REPRO_EXAMPLES_QUICK=1 to run a
#: scaled-down storm; the narrative stays identical.
QUICK = bool(os.environ.get("REPRO_EXAMPLES_QUICK"))
VEHICLES = 8 if QUICK else 24


def main() -> None:
    config = FleetConfig(
        n_vehicles=VEHICLES,
        seed=b"fleet-storm-example",
        records_per_vehicle=12,
        max_records=6,  # forces one re-key per vehicle
        send_interval_ms=20.0,
        arrival_spread_ms=100.0,  # the whole fleet wakes up within 100 ms
    )
    print(f"Unleashing {VEHICLES} vehicles on one CA/gateway...\n")
    result = FleetOrchestrator(config).run()

    print(result.stats.render())

    fastest = min(result.vehicles, key=lambda v: v.done_at)
    slowest = max(result.vehicles, key=lambda v: v.done_at)
    print("\nFastest vehicle lifecycle:")
    print(fastest.timeline())
    print("\nSlowest vehicle lifecycle (paid for CA contention):")
    print(slowest.timeline())

    generations = {v.generation for v in result.vehicles}
    print(
        f"\nEvery vehicle re-keyed under the {config.max_records}-record"
        f" budget: final generations {sorted(generations)}"
    )
    print(
        f"Stats digest (same seed always reproduces it):"
        f" {result.stats.digest()}"
    )


if __name__ == "__main__":
    main()
