#!/usr/bin/env python3
"""Fleet mesh: sharded gateways, V2V sessions and a mid-run failover.

The storm example hits one CA/gateway; this one runs the full topology
subsystem:

* the fleet is split across **3 gateway shards**, each its own contended
  central device, each issuing through a CA *chained* to one fleet root
  (any member validates any other member up to the root);
* 50 % of the vehicles pair up for **V2V sessions** — STS directly
  between two vehicles, no gateway in the data path; pairs that landed on
  different shards authenticate through the certificate chain;
* at t = 4 s — mid-traffic — **shard 0 dies**: its queued requests
  re-queue at the survivors and its vehicles re-key there with their
  existing chained credentials, while V2V traffic (hub-free) keeps
  flowing.

Run:  PYTHONPATH=src python examples/fleet_mesh.py
"""

from __future__ import annotations

import os

from repro.fleet import FleetConfig, FleetOrchestrator

#: The examples smoke test (and CI) sets REPRO_EXAMPLES_QUICK=1 to run a
#: scaled-down mesh; the narrative stays identical.
QUICK = bool(os.environ.get("REPRO_EXAMPLES_QUICK"))
VEHICLES = 9 if QUICK else 18


def main() -> None:
    config = FleetConfig(
        n_vehicles=VEHICLES,
        seed=b"fleet-mesh-example",
        records_per_vehicle=40,
        max_records=50,
        send_interval_ms=20.0,
        arrival_spread_ms=60.0,
        shards=3,
        shard_policy="least-loaded",
        v2v_fraction=0.5,
        v2v_records=8,
        shard_fail_at_ms=4_000.0,
        fail_shard=0,
    )
    print(
        f"Unleashing {VEHICLES} vehicles on 3 gateway shards"
        " (one of which will not survive)...\n"
    )
    orchestrator = FleetOrchestrator(config)
    topology = orchestrator.topology
    print(f"fleet root CA   : {topology.root_ca.ca_id.decode().rstrip('-')}")
    for shard in topology.shards:
        cert = shard.ca_certificate
        print(
            f"  shard {shard.index}: CA {shard.ca_name} (serial"
            f" {cert.serial} at the root), gateway {shard.gateway_name}"
        )
    result = orchestrator.run()

    print()
    print(result.stats.render())

    moved = [v for v in result.vehicles if v.handovers > 0]
    if moved:
        print(f"\nA vehicle that survived the shard-0 failure ({moved[0].name}):")
        print(moved[0].timeline())

    cross = [
        v
        for v in result.vehicles
        if v.v2v_peer_index is not None
        and v.shard != result.vehicles[v.v2v_peer_index].shard
        and v.index < v.v2v_peer_index
    ]
    if cross:
        vehicle = cross[0]
        peer = result.vehicles[vehicle.v2v_peer_index]
        print(
            f"\nCross-shard V2V pair: {vehicle.name} (shard {vehicle.shard})"
            f" ↔ {peer.name} (shard {peer.shard}) — their certificates name"
            " different issuing CAs"
            f" ({vehicle.credential.certificate.authority_key_id.hex()[:8]}…"
            f" vs {peer.credential.certificate.authority_key_id.hex()[:8]}…),"
            "\nvalidated against each other through the chain to the root."
        )

    print(
        f"\nStats digest (same seed always reproduces it):"
        f" {result.stats.digest()}"
    )


if __name__ == "__main__":
    main()
