#!/usr/bin/env python3
"""Fleet churn: a migration storm, a gateway death, and a rejoin.

The mesh example kills a shard and leaves it dead; this one runs the full
churn lifecycle a real multi-gateway deployment lives in:

* the fleet runs on **2 gateway shards** with a **threshold-1
  re-balancer**: whenever a shard holds 2+ more active vehicles than the
  other, a vehicle live-migrates over — its gateway sessions drain (the
  dead half can only see ``SessionExpired``), it re-enrolls through the
  target sub-CA and re-keys there;
* at t = 4.5 s **shard 0 dies**: queued requests re-queue and its
  vehicles fail over to shard 1;
* at t = 6 s **shard 0 rejoins** with a *fresh* sub-CA chained to the
  same fleet root at **chain epoch 2**.  The trust store retires the dead
  epoch, so pre-failure certificates are rejected at their next
  establishment and re-enroll; the re-balancer then migrates vehicles
  back onto the recovered shard.

Run:  PYTHONPATH=src python examples/fleet_churn.py
"""

from __future__ import annotations

import os

from repro.fleet import FleetConfig, FleetOrchestrator

#: The examples smoke test (and CI) sets REPRO_EXAMPLES_QUICK=1 to run a
#: scaled-down churn storm; the narrative stays identical.
QUICK = bool(os.environ.get("REPRO_EXAMPLES_QUICK"))
VEHICLES = 8 if QUICK else 14


def main() -> None:
    config = FleetConfig(
        n_vehicles=VEHICLES,
        seed=b"fleet-churn-example",
        records_per_vehicle=60,
        max_records=12,
        send_interval_ms=25.0,
        arrival_spread_ms=40.0,
        shards=2,
        shard_fail_at_ms=4_500.0,
        fail_shard=0,
        shard_rejoin_at_ms=6_000.0,
        migrate_threshold=1,
    )
    print(
        f"Unleashing {VEHICLES} vehicles on 2 gateway shards"
        " (one dies at 4.5 s and rejoins at 6 s, re-keyed)...\n"
    )
    orchestrator = FleetOrchestrator(config)
    store = orchestrator.topology.trust_store
    shard0 = orchestrator.shards[0]
    pre_failure_akid = shard0.ca.authority_key_id
    result = orchestrator.run()
    stats = result.stats

    print(stats.render())

    print("\nPer-epoch shard history:")
    for shard in stats.per_shard:
        epochs = (
            f"epoch 1 (provisioned) -> failed -> epoch {shard.epoch} (rejoined)"
            if shard.epoch > 1
            else "epoch 1 (provisioned, never failed)"
        )
        print(
            f"  shard {shard.index}: {epochs};"
            f" migrations +{shard.migrations_in}/-{shard.migrations_out},"
            f" {shard.handovers_in} failover handovers in"
        )
    print(
        f"  trust store: shard-0 CA now at chain epoch"
        f" {store.chain_epoch(shard0.ca_certificate.subject_id)};"
        f" pre-failure authority {pre_failure_akid.hex()[:8]}… retired ="
        f" {store.is_retired(pre_failure_akid)}"
    )

    migrant = next((v for v in result.vehicles if v.migrations > 0), None)
    if migrant is not None:
        print(f"\nA vehicle that lived through the churn ({migrant.name}):")
        print(migrant.timeline())

    stale = [
        v
        for v in result.vehicles
        for e in v.events
        if e.kind == "re-enroll" and "chain epoch rolled" in e.detail
    ]
    if stale:
        print(
            f"\n{len(stale)} establishment(s) were blocked by the"
            " chain-epoch check and re-enrolled first — a dead CA's"
            " certificates never validate again."
        )

    print(
        f"\nStats digest (same seed always reproduces it):"
        f" {stats.digest()}"
    )


if __name__ == "__main__":
    main()
